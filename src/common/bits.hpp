// Bit-manipulation helpers shared by the encoding and hardware layers.
//
// These are constexpr, so they use a throw-expression for contract checks
// instead of RSNN_REQUIRE (which builds an ostringstream and is therefore
// not usable in constant-evaluable code before C++23).
#pragma once

#include <bit>
#include <cstdint>

#include "common/assert.hpp"

namespace rsnn {

/// Number of bits needed to represent `value` (0 -> 0 bits).
constexpr int bit_width(std::uint64_t value) { return std::bit_width(value); }

/// ceil(log2(value)) for value >= 1.
constexpr int ceil_log2(std::uint64_t value) {
  if (value < 1) throw ContractViolation("ceil_log2: value < 1");
  return bit_width(value - 1);
}

/// Integer ceiling division for non-negative operands.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  if (b <= 0 || a < 0) throw ContractViolation("ceil_div: bad operands");
  return (a + b - 1) / b;
}

/// Extract bit `index` (0 = LSB).
constexpr bool test_bit(std::uint64_t value, int index) {
  return ((value >> index) & 1ull) != 0;
}

/// Saturate a signed value into the representable range of `bits`-bit
/// two's-complement, i.e. [-2^(bits-1), 2^(bits-1)-1].
constexpr std::int64_t saturate_signed(std::int64_t value, int bits) {
  if (bits < 1 || bits > 63) throw ContractViolation("saturate_signed: bits");
  const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
  const std::int64_t lo = -(std::int64_t{1} << (bits - 1));
  if (value > hi) return hi;
  if (value < lo) return lo;
  return value;
}

/// Saturate an unsigned value into [0, 2^bits - 1].
constexpr std::int64_t saturate_unsigned(std::int64_t value, int bits) {
  if (bits < 1 || bits > 62) throw ContractViolation("saturate_unsigned: bits");
  const std::int64_t hi = (std::int64_t{1} << bits) - 1;
  if (value < 0) return 0;
  if (value > hi) return hi;
  return value;
}

}  // namespace rsnn
