#include <gtest/gtest.h>

#include <set>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"

namespace rsnn {
namespace {

// ---------------------------------------------------------------- contracts

TEST(Assert, RequireThrowsWithMessage) {
  try {
    RSNN_REQUIRE(1 == 2, "custom detail " << 42);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("custom detail 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Assert, RequirePassesSilently) {
  EXPECT_NO_THROW(RSNN_REQUIRE(2 + 2 == 4));
}

TEST(Assert, EnsureThrows) {
  EXPECT_THROW(RSNN_ENSURE(false), ContractViolation);
}

// --------------------------------------------------------------------- bits

TEST(Bits, BitWidth) {
  EXPECT_EQ(bit_width(0), 0);
  EXPECT_EQ(bit_width(1), 1);
  EXPECT_EQ(bit_width(2), 2);
  EXPECT_EQ(bit_width(255), 8);
  EXPECT_EQ(bit_width(256), 9);
}

TEST(Bits, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(8), 3);
  EXPECT_EQ(ceil_log2(9), 4);
}

TEST(Bits, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 3), 0);
  EXPECT_EQ(ceil_div(1, 3), 1);
  EXPECT_EQ(ceil_div(3, 3), 1);
  EXPECT_EQ(ceil_div(4, 3), 2);
  EXPECT_THROW(ceil_div(1, 0), ContractViolation);
  EXPECT_THROW(ceil_div(-1, 2), ContractViolation);
}

TEST(Bits, TestBit) {
  EXPECT_TRUE(test_bit(0b1010, 1));
  EXPECT_FALSE(test_bit(0b1010, 0));
  EXPECT_TRUE(test_bit(0b1010, 3));
}

TEST(Bits, SaturateSigned) {
  EXPECT_EQ(saturate_signed(100, 8), 100);
  EXPECT_EQ(saturate_signed(200, 8), 127);
  EXPECT_EQ(saturate_signed(-200, 8), -128);
  EXPECT_EQ(saturate_signed(3, 3), 3);
  EXPECT_EQ(saturate_signed(4, 3), 3);
  EXPECT_EQ(saturate_signed(-5, 3), -4);
}

TEST(Bits, SaturateUnsigned) {
  EXPECT_EQ(saturate_unsigned(5, 4), 5);
  EXPECT_EQ(saturate_unsigned(16, 4), 15);
  EXPECT_EQ(saturate_unsigned(-1, 4), 0);
}

// ---------------------------------------------------------------------- rng

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRangeAndCoversValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_gaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, SplitStreamsAreIndependentlySeeded) {
  Rng a(23);
  Rng b = a.split();
  EXPECT_NE(a.next_u64(), b.next_u64());
}

// ---------------------------------------------------------------------- log

TEST(Log, LevelFiltering) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  RSNN_DEBUG("should be suppressed " << 1);
  set_log_level(saved);
}

}  // namespace
}  // namespace rsnn
