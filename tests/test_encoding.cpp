#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "encoding/analysis.hpp"
#include "encoding/radix.hpp"
#include "encoding/rate.hpp"
#include "encoding/spike_train.hpp"

namespace rsnn::encoding {
namespace {

TEST(SpikeTrain, SetAndGet) {
  SpikeTrain train(Shape{2, 2}, 3);
  EXPECT_FALSE(train.spike(0, 0));
  train.set_spike(1, 2, true);
  EXPECT_TRUE(train.spike(1, 2));
  EXPECT_EQ(train.total_spikes(), 1);
  EXPECT_EQ(train.spike_count(2), 1);
  train.set_spike(1, 2, false);
  EXPECT_EQ(train.total_spikes(), 0);
}

TEST(SpikeTrain, BoundsChecked) {
  SpikeTrain train(Shape{4}, 2);
  EXPECT_THROW(train.spike(2, 0), ContractViolation);
  EXPECT_THROW(train.spike(0, 4), ContractViolation);
}

// ------------------------------------------------------------------- radix

TEST(Radix, MsbFirstOrder) {
  // Code 0b100 (=4) at T=3 must spike only at t=0 (the MSB step).
  TensorI codes(Shape{1});
  codes.at_flat(0) = 4;
  const SpikeTrain train = radix_encode_codes(codes, 3);
  EXPECT_TRUE(train.spike(0, 0));
  EXPECT_FALSE(train.spike(1, 0));
  EXPECT_FALSE(train.spike(2, 0));
}

TEST(Radix, CodeRoundTripExhaustive) {
  for (int T = 1; T <= 8; ++T) {
    const std::int64_t levels = std::int64_t{1} << T;
    TensorI codes(Shape{levels});
    for (std::int64_t i = 0; i < levels; ++i)
      codes.at_flat(i) = static_cast<std::int32_t>(i);
    const SpikeTrain train = radix_encode_codes(codes, T);
    const TensorI back = radix_decode_codes(train);
    EXPECT_EQ(back, codes) << "T=" << T;
  }
}

TEST(Radix, RejectsOutOfRangeCodes) {
  TensorI codes(Shape{1});
  codes.at_flat(0) = 8;
  EXPECT_THROW(radix_encode_codes(codes, 3), ContractViolation);
  codes.at_flat(0) = -1;
  EXPECT_THROW(radix_encode_codes(codes, 3), ContractViolation);
}

TEST(Radix, FloatQuantizationIsFloor) {
  TensorF values(Shape{3});
  values.at_flat(0) = 0.0f;
  values.at_flat(1) = 0.49f;  // floor(0.49 * 8) = 3
  values.at_flat(2) = 0.99f;  // floor(0.99 * 8) = 7
  const SpikeTrain train = radix_encode(values, 3);
  const TensorI codes = radix_decode_codes(train);
  EXPECT_EQ(codes.at_flat(0), 0);
  EXPECT_EQ(codes.at_flat(1), 3);
  EXPECT_EQ(codes.at_flat(2), 7);
}

TEST(Radix, RejectsValuesOutsideUnitInterval) {
  TensorF values(Shape{1});
  values.at_flat(0) = 1.0f;
  EXPECT_THROW(radix_encode(values, 3), ContractViolation);
  values.at_flat(0) = -0.1f;
  EXPECT_THROW(radix_encode(values, 3), ContractViolation);
}

class RadixErrorSweep : public ::testing::TestWithParam<int> {};

TEST_P(RadixErrorSweep, ErrorBoundedByGridStep) {
  const int T = GetParam();
  Rng rng(42);
  const TensorF values = uniform_test_values(2000, rng);
  const EncodingErrorStats stats = radix_error(values, T);
  EXPECT_LE(stats.max_abs_error, std::ldexp(1.0, -T) + 1e-9)
      << "radix error must be < 2^-T";
  EXPECT_LE(stats.mean_abs_error, std::ldexp(1.0, -T));
}

TEST_P(RadixErrorSweep, ErrorHalvesPerExtraStep) {
  const int T = GetParam();
  Rng rng(43);
  const TensorF values = uniform_test_values(2000, rng);
  const double err_T = radix_error(values, T).mean_abs_error;
  const double err_T1 = radix_error(values, T + 1).mean_abs_error;
  EXPECT_NEAR(err_T / err_T1, 2.0, 0.35);
}

INSTANTIATE_TEST_SUITE_P(TimeSteps, RadixErrorSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 10));

// -------------------------------------------------------------------- rate

TEST(Rate, SpikeCountMatchesValue) {
  TensorF values(Shape{3});
  values.at_flat(0) = 0.0f;
  values.at_flat(1) = 0.5f;
  values.at_flat(2) = 1.0f;
  const SpikeTrain train = rate_encode(values, 10);
  EXPECT_EQ(train.spike_count(0), 0);
  EXPECT_EQ(train.spike_count(1), 5);
  EXPECT_EQ(train.spike_count(2), 10);
}

TEST(Rate, SpikesAreEvenlySpaced) {
  TensorF values(Shape{1});
  values.at_flat(0) = 0.5f;
  const SpikeTrain train = rate_encode(values, 8);
  // 4 spikes over 8 steps: no two adjacent pairs... verify max gap <= 2.
  int last = -2, max_gap = 0;
  for (int t = 0; t < 8; ++t) {
    if (train.spike(t, 0)) {
      if (last >= 0) max_gap = std::max(max_gap, t - last);
      last = t;
    }
  }
  EXPECT_LE(max_gap, 2);
}

TEST(Rate, DecodeIsCountOverT) {
  TensorF values(Shape{5});
  for (std::int64_t i = 0; i < 5; ++i)
    values.at_flat(i) = static_cast<float>(i) / 5.0f;
  const SpikeTrain train = rate_encode(values, 20);
  const TensorF decoded = rate_decode(train);
  for (std::int64_t i = 0; i < 5; ++i)
    EXPECT_NEAR(decoded.at_flat(i), values.at_flat(i), 0.051f);
}

TEST(Rate, StochasticMeanConverges) {
  Rng rng(7);
  TensorF values(Shape{1});
  values.at_flat(0) = 0.3f;
  int total = 0;
  const int trials = 200, T = 16;
  for (int i = 0; i < trials; ++i) {
    const SpikeTrain train = rate_encode_stochastic(values, T, rng);
    total += train.spike_count(0);
  }
  EXPECT_NEAR(static_cast<double>(total) / (trials * T), 0.3, 0.03);
}

// ----------------------------------------------------- radix vs rate claim

class EncodingComparison : public ::testing::TestWithParam<int> {};

TEST_P(EncodingComparison, RadixBeatsRateAtEqualT) {
  const int T = GetParam();
  Rng rng(11);
  const TensorF values = uniform_test_values(3000, rng);
  const double radix = radix_error(values, T).rms_error;
  const double rate = rate_error(values, T).rms_error;
  // The paper's core claim: radix encoding achieves exponentially lower
  // quantization error at the same spike-train length. (At T <= 2 the two
  // grids coincide up to rounding mode, so the sweep starts at 3.)
  EXPECT_LT(radix, rate);
}

INSTANTIATE_TEST_SUITE_P(TimeSteps, EncodingComparison,
                         ::testing::Values(3, 4, 5, 6, 8));

TEST(EncodingComparison, RateNeedsExponentiallyMoreSteps) {
  Rng rng(13);
  const TensorF values = uniform_test_values(3000, rng);
  const double radix_t4 = radix_error(values, 4).rms_error;
  // Find the T at which rate encoding matches radix at T=4.
  int T = 4;
  while (T < 4096 && rate_error(values, T).rms_error > radix_t4) T *= 2;
  EXPECT_GE(T, 16) << "rate encoding should need far more than 4 steps";
}

}  // namespace
}  // namespace rsnn::encoding
