// Per-channel weight quantization: resolution gains, hardware bit-exactness
// and serialization of the per-channel requantizer shifts.
#include <gtest/gtest.h>

#include <cstdio>

#include "encoding/radix.hpp"
#include "hw/accelerator.hpp"
#include "nn/conv2d.hpp"
#include "quant/qserialize.hpp"
#include "quant/quantize.hpp"
#include "snn/radix_snn.hpp"
#include "test_helpers.hpp"

namespace rsnn::quant {
namespace {

using rsnn::testing::random_image;
using rsnn::testing::small_random_net;

TEST(PerChannel, ChannelsGetIndividualShifts) {
  Rng rng(1);
  nn::Network net = small_random_net(rng);
  // Make channel 0's weights much larger than channel 1's so per-layer
  // scaling would starve channel 1 of resolution.
  auto* conv = dynamic_cast<nn::Conv2d*>(&net.layer(0));
  ASSERT_NE(conv, nullptr);
  for (std::int64_t i = 0; i < conv->weight().value.numel() / 3; ++i) {
    conv->weight().value.at_flat(i) *= 4.0f;        // channel 0 big
    conv->weight().value.at_flat(
        i + conv->weight().value.numel() / 3) *= 0.1f;  // channel 1 tiny
  }

  QuantizeConfig cfg{3, 4, /*per_channel=*/true};
  const QuantizedNetwork qnet = quantize(net, cfg);
  const auto& qconv = std::get<QConv2d>(qnet.layers[0]);
  ASSERT_EQ(qconv.channel_frac.numel(), 3);
  EXPECT_LT(qconv.channel_frac.at_flat(0), qconv.channel_frac.at_flat(1))
      << "larger weights need a smaller scale exponent";
}

TEST(PerChannel, ReconstructionNoWorseThanPerLayer) {
  // Mean weight reconstruction error with per-channel scales must be <= the
  // per-layer error (strictly better when channel magnitudes differ).
  Rng rng(2);
  nn::Network net = small_random_net(rng);
  auto* conv = dynamic_cast<nn::Conv2d*>(&net.layer(0));
  for (std::int64_t i = 0; i < conv->weight().value.numel() / 3; ++i)
    conv->weight().value.at_flat(i) *= 5.0f;

  const auto per_layer = quantize(net, QuantizeConfig{3, 4, false});
  const auto per_channel = quantize(net, QuantizeConfig{3, 4, true});

  auto reconstruction_error = [&](const QConv2d& q) {
    double err = 0.0;
    const std::int64_t per_ch = q.weight.numel() / q.out_channels;
    for (std::int64_t c = 0; c < q.out_channels; ++c) {
      const double step = std::ldexp(1.0, -q.frac_for(c));
      for (std::int64_t i = 0; i < per_ch; ++i) {
        const double w = conv->weight().value.at_flat(c * per_ch + i);
        const double rec = q.weight.at_flat(c * per_ch + i) * step;
        err += std::abs(w - rec);
      }
    }
    return err;
  };
  EXPECT_LE(reconstruction_error(std::get<QConv2d>(per_channel.layers[0])),
            reconstruction_error(std::get<QConv2d>(per_layer.layers[0])) + 1e-9);
}

TEST(PerChannel, AllSimulatorsStayBitExact) {
  Rng rng(3);
  nn::Network net = small_random_net(rng);
  const auto qnet = quantize(net, QuantizeConfig{3, 4, true});

  hw::AcceleratorConfig cfg;
  cfg.num_conv_units = 2;
  cfg.conv = hw::ConvUnitGeometry{16, 3, 24};
  cfg.pool = hw::PoolUnitGeometry{8, 2, 16};
  cfg.linear = hw::LinearUnitGeometry{4, 24};
  hw::Accelerator accel(cfg, qnet);
  const snn::RadixSnn functional(qnet);

  for (int trial = 0; trial < 8; ++trial) {
    const TensorF image = random_image(Shape{1, 10, 10}, rng);
    const TensorI codes = encode_activations(image, 4);
    const auto reference = qnet.forward(codes);
    EXPECT_EQ(functional.run(encoding::radix_encode_codes(codes, 4)).logits,
              reference);
    const auto run = accel.run_codes(codes);
    EXPECT_EQ(run.logits, reference);
    EXPECT_EQ(run.total_cycles, accel.predict_total_cycles());
  }
}

TEST(PerChannel, SerializationRoundTrips) {
  Rng rng(4);
  nn::Network net = small_random_net(rng);
  const auto qnet = quantize(net, QuantizeConfig{3, 4, true});
  const std::string path = ::testing::TempDir() + "/per_channel.qsnn";
  save_quantized(qnet, path);
  const auto loaded = load_quantized(path);

  const auto& a = std::get<QConv2d>(qnet.layers[0]);
  const auto& b = std::get<QConv2d>(loaded.layers[0]);
  EXPECT_EQ(a.channel_frac, b.channel_frac);

  const TensorF image = random_image(Shape{1, 10, 10}, rng);
  const TensorI codes = encode_activations(image, 4);
  EXPECT_EQ(loaded.forward(codes), qnet.forward(codes));
  std::remove(path.c_str());
}

TEST(PerChannel, UniformWeightsMatchPerLayerExactly) {
  // When all channels share the same magnitude profile, per-channel and
  // per-layer quantization pick the same grid and the same integer outputs.
  Rng rng(5);
  nn::Network net = small_random_net(rng);
  const auto a = quantize(net, QuantizeConfig{3, 4, false});
  const auto b = quantize(net, QuantizeConfig{3, 4, true});
  int agree = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const TensorF image = random_image(Shape{1, 10, 10}, rng);
    const TensorI codes = encode_activations(image, 4);
    if (a.classify(codes) == b.classify(codes)) ++agree;
  }
  EXPECT_GE(agree, 9);
}

}  // namespace
}  // namespace rsnn::quant
