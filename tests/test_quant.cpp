#include <gtest/gtest.h>

#include <cmath>

#include "quant/qnetwork.hpp"
#include "quant/quantize.hpp"
#include "test_helpers.hpp"

namespace rsnn::quant {
namespace {

using rsnn::testing::random_image;
using rsnn::testing::small_random_net;

// --------------------------------------------------------- weight scaling

TEST(ChooseFracBits, MaximizesResolutionWithoutClipping) {
  TensorF w(Shape{3});
  w.at_flat(0) = 0.4f;
  w.at_flat(1) = -0.7f;
  w.at_flat(2) = 0.1f;
  const int f = choose_frac_bits(w, 3);  // q_max = 3
  // round(0.7 * 2^f) <= 3  ->  f = 2 (0.7*4 = 2.8 -> 3); f = 3 gives 5.6 -> 6.
  EXPECT_EQ(f, 2);
  const TensorI q = quantize_weights(w, f, 3);
  EXPECT_EQ(q.at_flat(0), 2);   // 1.6 -> 2
  EXPECT_EQ(q.at_flat(1), -3);  // -2.8 -> -3
  EXPECT_EQ(q.at_flat(2), 0);   // 0.4 -> 0
}

TEST(ChooseFracBits, ZeroWeightsGiveZero) {
  TensorF w(Shape{4}, 0.0f);
  EXPECT_EQ(choose_frac_bits(w, 3), 0);
}

TEST(ChooseFracBits, LargeWeightsGiveNegativeShift) {
  TensorF w(Shape{1});
  w.at_flat(0) = 12.0f;
  const int f = choose_frac_bits(w, 3);
  EXPECT_LT(f, 0);
  const TensorI q = quantize_weights(w, f, 3);
  const double reconstructed = q.at_flat(0) * std::ldexp(1.0, -f);
  EXPECT_NEAR(reconstructed, 12.0, 4.01);
}

TEST(QuantizeWeights, ClampsToSignedRange) {
  TensorF w(Shape{2});
  w.at_flat(0) = 100.0f;
  w.at_flat(1) = -100.0f;
  const TensorI q = quantize_weights(w, 0, 3);
  EXPECT_EQ(q.at_flat(0), 3);
  EXPECT_EQ(q.at_flat(1), -3);
}

TEST(QuantizeWeights, ReconstructionErrorBounded) {
  Rng rng(3);
  const TensorF w = rsnn::testing::random_tensor(Shape{256}, rng, -0.8, 0.8);
  for (int bits = 2; bits <= 8; ++bits) {
    const int f = choose_frac_bits(w, bits);
    const TensorI q = quantize_weights(w, f, bits);
    const double step = std::ldexp(1.0, -f);
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      const double reconstructed = q.at_flat(i) * step;
      EXPECT_LE(std::abs(reconstructed - w.at_flat(i)), step / 2 + 1e-9)
          << "bits=" << bits;
    }
  }
}

// ------------------------------------------------------ encode activations

TEST(EncodeActivations, FloorToGrid) {
  TensorF img(Shape{1, 1, 2});
  img(0, 0, 0) = 0.26f;
  img(0, 0, 1) = 0.99f;
  const TensorI codes = encode_activations(img, 2);  // grid step 0.25
  EXPECT_EQ(codes(0, 0, 0), 1);
  EXPECT_EQ(codes(0, 0, 1), 3);
}

TEST(EncodeActivations, RejectsOutOfRange) {
  TensorF img(Shape{1}, 1.0f);
  EXPECT_THROW(encode_activations(img, 3), ContractViolation);
}

// ------------------------------------------------------------- conversion

TEST(Quantize, LayerStructureIsPreserved) {
  Rng rng(4);
  nn::Network net = small_random_net(rng);
  const QuantizedNetwork qnet = quantize(net, QuantizeConfig{3, 4});
  ASSERT_EQ(qnet.layers.size(), 4u);  // conv, pool, flatten, linear
  EXPECT_TRUE(std::holds_alternative<QConv2d>(qnet.layers[0]));
  EXPECT_TRUE(std::holds_alternative<QPool2d>(qnet.layers[1]));
  EXPECT_TRUE(std::holds_alternative<QFlatten>(qnet.layers[2]));
  EXPECT_TRUE(std::holds_alternative<QLinear>(qnet.layers[3]));
  EXPECT_TRUE(std::get<QConv2d>(qnet.layers[0]).requantize);
  EXPECT_FALSE(std::get<QLinear>(qnet.layers[3]).requantize);
}

TEST(Quantize, RejectsMaxPooling) {
  Rng rng(5);
  nn::Network net(Shape{1, 8, 8});
  net.add<nn::Conv2d>(nn::Conv2dConfig{1, 2, 3});
  net.add<nn::ClippedReLU>(nn::ClippedReLUConfig{1.0f, 0});
  net.add<nn::Pool2d>(nn::Pool2dConfig{2, 0, nn::PoolKind::kMax});
  net.init_params(rng);
  EXPECT_THROW(quantize(net, QuantizeConfig{3, 4}), ContractViolation);
}

TEST(Quantize, RejectsNonUnitCeiling) {
  Rng rng(6);
  nn::Network net(Shape{1, 8, 8});
  net.add<nn::Conv2d>(nn::Conv2dConfig{1, 2, 3});
  net.add<nn::ClippedReLU>(nn::ClippedReLUConfig{2.0f, 0});
  net.init_params(rng);
  EXPECT_THROW(quantize(net, QuantizeConfig{3, 4}), ContractViolation);
}

TEST(Quantize, WeightBitsRespected) {
  Rng rng(7);
  nn::Network net = small_random_net(rng);
  const QuantizedNetwork qnet = quantize(net, QuantizeConfig{3, 4});
  const auto& conv = std::get<QConv2d>(qnet.layers[0]);
  EXPECT_LE(conv.weight.max(), 3);
  EXPECT_GE(conv.weight.min(), -3);
}

// Quantized inference should agree with float inference up to quantization
// error: with generous bit widths the logits argmax matches.
TEST(Quantize, HighPrecisionMatchesFloatArgmax) {
  Rng rng(8);
  nn::Network net = small_random_net(rng);
  const QuantizedNetwork qnet = quantize(net, QuantizeConfig{10, 10});

  int agree = 0;
  const int trials = 25;
  for (int i = 0; i < trials; ++i) {
    const TensorF image = random_image(Shape{1, 10, 10}, rng);
    std::vector<std::int64_t> batch_dims{1};
    for (const auto d : image.shape().dims()) batch_dims.push_back(d);
    const TensorF logits =
        net.forward(image.reshaped(Shape{batch_dims}), false);
    std::int64_t float_argmax = logits.argmax();
    if (qnet.classify(encode_activations(image, 10)) ==
        static_cast<int>(float_argmax))
      ++agree;
  }
  EXPECT_GE(agree, trials - 2);
}

TEST(Quantize, ForwardTracedRecordsEveryLayer) {
  Rng rng(9);
  nn::Network net = small_random_net(rng);
  const QuantizedNetwork qnet = quantize(net, QuantizeConfig{3, 3});
  const TensorF image = random_image(Shape{1, 10, 10}, rng);
  std::vector<TensorI64> traces;
  qnet.forward_traced(encode_activations(image, 3), &traces);
  ASSERT_EQ(traces.size(), qnet.layers.size());
  // Intermediate (requantized) activations stay in [0, 2^T).
  for (std::size_t li = 0; li + 1 < traces.size(); ++li) {
    EXPECT_GE(traces[li].min(), 0);
    EXPECT_LT(traces[li].max(), 8);
  }
}

TEST(Quantize, OutputShapesMatchFloatNetwork) {
  Rng rng(10);
  nn::Network net = small_random_net(rng);
  const QuantizedNetwork qnet = quantize(net, QuantizeConfig{3, 4});
  const auto shapes = qnet.layer_output_shapes();
  EXPECT_EQ(shapes.back(), Shape({4}));
  EXPECT_EQ(shapes[0], Shape({3, 8, 8}));
  EXPECT_EQ(shapes[1], Shape({3, 4, 4}));
}

TEST(Quantize, ParamCountsAndBits) {
  Rng rng(11);
  nn::Network net = small_random_net(rng);
  const QuantizedNetwork qnet = quantize(net, QuantizeConfig{3, 4});
  // conv: 3*1*3*3 + 3 bias; linear: 4*48 + 4 bias.
  EXPECT_EQ(qnet.num_params(), 27 + 3 + 192 + 4);
  EXPECT_GT(qnet.param_bits(), qnet.num_params() * 3);
}

TEST(Quantize, EvaluateQuantizedRunsOnDataset) {
  Rng rng(12);
  nn::Network net = small_random_net(rng);
  const QuantizedNetwork qnet = quantize(net, QuantizeConfig{3, 4});
  std::vector<TensorF> images;
  std::vector<int> labels;
  for (int i = 0; i < 10; ++i) {
    images.push_back(random_image(Shape{1, 10, 10}, rng));
    labels.push_back(i % 4);
  }
  const QuantEvalResult result = evaluate_quantized(qnet, images, labels);
  EXPECT_EQ(result.total, 10);
  EXPECT_GE(result.correct, 0);
  EXPECT_LE(result.correct, 10);
}

// -------------------------------------------------- requantizer arithmetic

TEST(QNetwork, RequantizeShiftMatchesFloatDivision) {
  // Build a 1x1 conv "network" computing requantize((w*A) + B) and compare
  // against the float formula floor(w_f * a + b) on the T-bit grid.
  QuantizedNetwork qnet;
  qnet.time_bits = 4;
  qnet.weight_bits = 3;
  qnet.input_shape = Shape{1, 1, 1};

  QConv2d conv;
  conv.in_channels = conv.out_channels = 1;
  conv.kernel = 1;
  conv.weight = TensorI(Shape{1, 1, 1, 1});
  conv.weight(0, 0, 0, 0) = 3;  // w = 3 * 2^-2 = 0.75
  conv.frac_bits = 2;
  conv.bias = TensorI64(Shape{1});
  conv.bias(0) = 16;  // b = 16 / 2^(4+2) = 0.25
  conv.requantize = true;
  qnet.layers.emplace_back(std::move(conv));

  for (std::int64_t code = 0; code < 16; ++code) {
    TensorI input(Shape{1, 1, 1});
    input(0, 0, 0) = static_cast<std::int32_t>(code);
    std::vector<TensorI64> traces;
    qnet.forward_traced(input, &traces);
    const double a = static_cast<double>(code) / 16.0;
    const double o = 0.75 * a + 0.25;
    const std::int64_t expected =
        std::min<std::int64_t>(static_cast<std::int64_t>(std::floor(o * 16.0)), 15);
    EXPECT_EQ(traces[0](0, 0, 0), expected) << "code=" << code;
  }
}

TEST(QNetwork, NegativeAccumulatorClampsToZero) {
  QuantizedNetwork qnet;
  qnet.time_bits = 3;
  qnet.weight_bits = 3;
  qnet.input_shape = Shape{1, 1, 1};
  QConv2d conv;
  conv.in_channels = conv.out_channels = 1;
  conv.kernel = 1;
  conv.weight = TensorI(Shape{1, 1, 1, 1});
  conv.weight(0, 0, 0, 0) = -3;
  conv.frac_bits = 1;
  conv.bias = TensorI64(Shape{1}, std::int64_t{0});
  conv.requantize = true;
  qnet.layers.emplace_back(std::move(conv));

  TensorI input(Shape{1, 1, 1});
  input(0, 0, 0) = 7;
  std::vector<TensorI64> traces;
  qnet.forward_traced(input, &traces);
  EXPECT_EQ(traces[0](0, 0, 0), 0);  // ReLU behaviour
}

TEST(QNetwork, PoolIsExactShift) {
  QuantizedNetwork qnet;
  qnet.time_bits = 3;
  qnet.weight_bits = 3;
  qnet.input_shape = Shape{1, 2, 2};
  QPool2d pool;
  pool.kernel = 2;
  pool.shift = 2;
  qnet.layers.emplace_back(pool);

  TensorI input(Shape{1, 2, 2});
  input(0, 0, 0) = 7;
  input(0, 0, 1) = 5;
  input(0, 1, 0) = 2;
  input(0, 1, 1) = 1;  // sum 15 >> 2 = 3
  std::vector<TensorI64> traces;
  qnet.forward_traced(input, &traces);
  EXPECT_EQ(traces[0](0, 0, 0), 3);
}

}  // namespace
}  // namespace rsnn::quant
