// .qsnn round-trip: the deployment artifact must load to a bit-identical
// integer model.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "quant/qserialize.hpp"
#include "quant/quantize.hpp"
#include "snn/sparsity.hpp"
#include "data/synth_digits.hpp"
#include "test_helpers.hpp"

namespace rsnn::quant {
namespace {

using rsnn::testing::random_image;
using rsnn::testing::small_random_net;

TEST(QSerialize, RoundTripIsBitIdentical) {
  Rng rng(1);
  nn::Network net = small_random_net(rng);
  const QuantizedNetwork original = quantize(net, QuantizeConfig{3, 4});

  const std::string path = ::testing::TempDir() + "/model.qsnn";
  save_quantized(original, path);
  EXPECT_TRUE(is_quantized_file(path));
  const QuantizedNetwork loaded = load_quantized(path);

  EXPECT_EQ(loaded.time_bits, original.time_bits);
  EXPECT_EQ(loaded.weight_bits, original.weight_bits);
  EXPECT_EQ(loaded.input_shape, original.input_shape);
  ASSERT_EQ(loaded.layers.size(), original.layers.size());

  // Bit-exact inference equality over random inputs.
  for (int trial = 0; trial < 10; ++trial) {
    const TensorF image = random_image(Shape{1, 10, 10}, rng);
    const TensorI codes = encode_activations(image, 4);
    EXPECT_EQ(loaded.forward(codes), original.forward(codes));
  }
  std::remove(path.c_str());
}

TEST(QSerialize, PreservesLayerParameters) {
  Rng rng(2);
  nn::Network net = small_random_net(rng);
  const QuantizedNetwork original = quantize(net, QuantizeConfig{3, 5});
  const std::string path = ::testing::TempDir() + "/model2.qsnn";
  save_quantized(original, path);
  const QuantizedNetwork loaded = load_quantized(path);

  const auto& conv_a = std::get<QConv2d>(original.layers[0]);
  const auto& conv_b = std::get<QConv2d>(loaded.layers[0]);
  EXPECT_EQ(conv_a.weight, conv_b.weight);
  EXPECT_EQ(conv_a.bias, conv_b.bias);
  EXPECT_EQ(conv_a.frac_bits, conv_b.frac_bits);
  EXPECT_EQ(conv_a.requantize, conv_b.requantize);

  const auto& fc_a = std::get<QLinear>(original.layers[3]);
  const auto& fc_b = std::get<QLinear>(loaded.layers[3]);
  EXPECT_EQ(fc_a.weight, fc_b.weight);
  EXPECT_FALSE(fc_b.requantize);
  std::remove(path.c_str());
}

TEST(QSerialize, RejectsMissingAndCorrupt) {
  EXPECT_THROW(load_quantized("/nonexistent/x.qsnn"), ContractViolation);
  EXPECT_FALSE(is_quantized_file("/nonexistent/x.qsnn"));

  const std::string path = ::testing::TempDir() + "/junk.qsnn";
  {
    std::ofstream os(path, std::ios::binary);
    os << "not a qsnn file at all";
  }
  EXPECT_THROW(load_quantized(path), ContractViolation);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rsnn::quant

namespace rsnn::snn {
namespace {

TEST(Sparsity, ReportCoversLayersAndIsConsistent) {
  Rng rng(3);
  nn::Network net = rsnn::testing::small_random_net(rng);
  const auto qnet = quant::quantize(net, quant::QuantizeConfig{3, 4});

  data::SynthDigitsConfig cfg;
  cfg.canvas = 10;
  cfg.num_samples = 8;
  const auto dataset = data::make_synth_digits(cfg);

  const SparsityReport report = analyze_sparsity(qnet, dataset);
  ASSERT_EQ(report.layers.size(), qnet.layers.size());
  EXPECT_GT(report.total_spikes_per_sample, 0.0);
  EXPECT_GT(report.total_synaptic_ops_per_sample, 0.0);
  EXPECT_GT(report.dynamic_energy_uj_per_sample, 0.0);
  for (const auto& layer : report.layers) {
    EXPECT_GE(layer.spike_rate, 0.0);
    EXPECT_LE(layer.spike_rate, 1.0);
  }
  const std::string text = to_string(report);
  EXPECT_NE(text.find("conv"), std::string::npos);
  EXPECT_NE(text.find("total:"), std::string::npos);
}

TEST(Sparsity, ZeroInputYieldsZeroInputSpikes) {
  Rng rng(4);
  nn::Network net = rsnn::testing::small_random_net(rng);
  const auto qnet = quant::quantize(net, quant::QuantizeConfig{3, 4});
  data::Dataset dataset;
  dataset.num_classes = 4;
  dataset.images.push_back(TensorF(Shape{1, 10, 10}, 0.0f));
  dataset.labels.push_back(0);
  const SparsityReport report = analyze_sparsity(qnet, dataset);
  EXPECT_DOUBLE_EQ(report.layers[0].mean_spikes, 0.0);
}

TEST(Sparsity, MoreTimeStepsMoreSpikes) {
  Rng rng(5);
  nn::Network net = rsnn::testing::small_random_net(rng);
  data::SynthDigitsConfig cfg;
  cfg.canvas = 10;
  cfg.num_samples = 4;
  const auto dataset = data::make_synth_digits(cfg);

  const auto q3 = quant::quantize(net, quant::QuantizeConfig{3, 3});
  const auto q6 = quant::quantize(net, quant::QuantizeConfig{3, 6});
  const double s3 = analyze_sparsity(q3, dataset).total_spikes_per_sample;
  const double s6 = analyze_sparsity(q6, dataset).total_spikes_per_sample;
  EXPECT_GT(s6, s3);
}

}  // namespace
}  // namespace rsnn::snn
