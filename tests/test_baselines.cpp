#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "baselines/fang2020.hpp"
#include "baselines/ju2020.hpp"

namespace rsnn::baselines {
namespace {

TEST(Fang2020, PublishedPointMatchesPaperTable3) {
  const BaselineReport r = fang2020_published();
  EXPECT_DOUBLE_EQ(r.latency_us, 7530.0);
  EXPECT_DOUBLE_EQ(r.throughput_fps, 2124.0);
  EXPECT_DOUBLE_EQ(r.power_w, 4.5);
  EXPECT_EQ(r.luts, 156000);
  EXPECT_EQ(r.flip_flops, 233000);
  EXPECT_NEAR(r.accuracy_pct, 99.2, 1e-9);
}

TEST(Fang2020, ScalingIsIdentityAtReferencePoint) {
  const BaselineReport ref = fang2020_published();
  const BaselineReport scaled = fang2020_scaled(
      BaselineWorkload{fang2020_reference_ops_per_step(), ref.time_steps});
  EXPECT_NEAR(scaled.latency_us, ref.latency_us, 1e-6);
  EXPECT_NEAR(scaled.throughput_fps, ref.throughput_fps, 1e-6);
}

TEST(Fang2020, LatencyScalesWithOpsAndSteps) {
  const double ops = fang2020_reference_ops_per_step();
  const BaselineReport doubled =
      fang2020_scaled(BaselineWorkload{2 * ops, fang2020_published().time_steps});
  EXPECT_NEAR(doubled.latency_us, 2 * 7530.0, 1e-6);
  const BaselineReport half_steps = fang2020_scaled(BaselineWorkload{ops, 5});
  EXPECT_NEAR(half_steps.latency_us, 7530.0 / 2, 1e-6);
}

TEST(Ju2020, PublishedPointMatchesPaperTable3) {
  const BaselineReport r = ju2020_published();
  EXPECT_DOUBLE_EQ(r.latency_us, 6110.0);
  EXPECT_DOUBLE_EQ(r.throughput_fps, 164.0);
  EXPECT_DOUBLE_EQ(r.power_w, 4.6);
  EXPECT_EQ(r.luts, 107000);
  EXPECT_NEAR(r.accuracy_pct, 98.9, 1e-9);
}

TEST(Ju2020, NonPipelinedThroughputIsInverseLatency) {
  const BaselineReport scaled = ju2020_scaled(
      BaselineWorkload{ju2020_reference_ops_per_step() / 2, 10});
  EXPECT_NEAR(scaled.throughput_fps, 1e6 / scaled.latency_us, 1e-6);
}

TEST(Ju2020, RejectsBadWorkload) {
  EXPECT_THROW((ju2020_scaled(BaselineWorkload{0.0, 4})),
               rsnn::ContractViolation);
  EXPECT_THROW((fang2020_scaled(BaselineWorkload{100.0, 0})),
               rsnn::ContractViolation);
}

TEST(CrossCheck, PaperImprovementClaimsHold) {
  // Paper abstract/Sec. IV-D: vs Fang et al. ~18x latency and ~25% power
  // improvement; vs Ju et al. ~15x throughput. Our accelerator rows are
  // produced by the simulator in bench/table3; here we sanity-check the
  // baseline side of those ratios against the published "This work" row.
  const BaselineReport fang = fang2020_published();
  const BaselineReport ju = ju2020_published();
  EXPECT_NEAR(fang.latency_us / 409.0, 18.0, 1.0);     // 18x latency
  EXPECT_NEAR(fang.power_w / 3.6, 1.25, 0.01);         // 25% power
  EXPECT_NEAR(2445.0 / ju.throughput_fps, 15.0, 0.15); // 15x throughput
}

}  // namespace
}  // namespace rsnn::baselines
