// Accumulator bit-width sizing: the analytic worst case must bound (and be
// reachable by) actual accumulations, and the compiler hook must shrink
// resources without changing results.
#include <gtest/gtest.h>

#include "compiler/compile.hpp"
#include "encoding/radix.hpp"
#include "hw/accumulator_sizing.hpp"
#include "hw/resource_model.hpp"
#include "quant/quantize.hpp"
#include "test_helpers.hpp"

namespace rsnn::hw {
namespace {

using rsnn::testing::random_image;
using rsnn::testing::small_random_net;

quant::QConv2d make_conv(std::initializer_list<std::int32_t> weights,
                         std::int64_t bias_value) {
  quant::QConv2d conv;
  conv.in_channels = 1;
  conv.out_channels = 1;
  conv.kernel = 2;
  conv.weight = TensorI(Shape{1, 1, 2, 2}, std::vector<std::int32_t>(weights));
  conv.bias = TensorI64(Shape{1});
  conv.bias(0) = bias_value;
  return conv;
}

TEST(AccumulatorSizing, ConvWorstCaseIsExact) {
  // Weights {3, -2, 1, -1}: per-step max = 4, min = -3. T = 3 -> x7.
  const auto conv = make_conv({3, -2, 1, -1}, 5);
  const AccumulatorRange r = conv_accumulator_range(conv, 3);
  EXPECT_EQ(r.max_value, 4 * 7 + 5);
  EXPECT_EQ(r.min_value, -3 * 7 + 5);
  // Range [-16, 33] needs 7 bits two's complement.
  EXPECT_EQ(r.required_bits, 7);
}

TEST(AccumulatorSizing, ConvWorstCaseIsReachable) {
  // Drive the worst case with an all-ones input and verify the membrane
  // actually reaches the predicted maximum (all positive weights fire at
  // every step; padding-free interior position).
  quant::QConv2d conv = make_conv({3, 2, 1, 1}, 0);  // all positive
  conv.requantize = false;
  const AccumulatorRange r = conv_accumulator_range(conv, 3);

  quant::QuantizedNetwork qnet;
  qnet.time_bits = 3;
  qnet.weight_bits = 3;
  qnet.input_shape = Shape{1, 3, 3};
  qnet.layers.emplace_back(conv);

  TensorI input(Shape{1, 3, 3}, 7);  // code 7 = spikes at every step
  const auto logits = qnet.forward(input);
  std::int64_t best = logits[0];
  for (const auto v : logits) best = std::max(best, v);
  EXPECT_EQ(best, r.max_value);
}

TEST(AccumulatorSizing, LinearRange) {
  quant::QLinear fc;
  fc.in_features = 3;
  fc.out_features = 2;
  fc.weight = TensorI(Shape{2, 3}, std::vector<std::int32_t>{1, 2, 3, -1, -2, -3});
  fc.bias = TensorI64(Shape{2});
  fc.bias(0) = 10;
  fc.bias(1) = -10;
  const AccumulatorRange r = linear_accumulator_range(fc, 2);
  EXPECT_EQ(r.max_value, 6 * 3 + 10);
  EXPECT_EQ(r.min_value, -6 * 3 - 10);
}

TEST(AccumulatorSizing, PoolRangeIsWindowTimesRadixWeight) {
  quant::QPool2d pool;
  pool.kernel = 2;
  pool.shift = 2;
  const AccumulatorRange r = pool_accumulator_range(pool, 4);
  EXPECT_EQ(r.min_value, 0);
  EXPECT_EQ(r.max_value, 4 * 15);
  EXPECT_EQ(r.required_bits, 7);  // [0, 60] needs 7 signed bits
}

TEST(AccumulatorSizing, NetworkRangesCoverAllLayers) {
  Rng rng(1);
  nn::Network net = small_random_net(rng);
  const auto qnet = quant::quantize(net, quant::QuantizeConfig{3, 4});
  const auto ranges = network_accumulator_ranges(qnet);
  ASSERT_EQ(ranges.size(), qnet.layers.size());
  EXPECT_GT(ranges[0].required_bits, 1);   // conv
  EXPECT_GT(ranges[1].required_bits, 1);   // pool
  EXPECT_EQ(ranges[2].required_bits, 1);   // flatten: no accumulator
  EXPECT_GT(ranges[3].required_bits, 1);   // linear
}

TEST(AccumulatorSizing, CompilerOptInShrinksResourcesKeepsResults) {
  Rng rng(2);
  nn::Network net = small_random_net(rng);
  const auto qnet = quant::quantize(net, quant::QuantizeConfig{3, 4});

  compiler::CompileOptions loose, sized;
  sized.size_accumulators = true;
  const auto loose_design = compiler::compile(qnet, loose);
  const auto sized_design = compiler::compile(qnet, sized);
  EXPECT_LT(sized_design.config.conv.accumulator_bits,
            loose_design.config.conv.accumulator_bits);

  Accelerator a(loose_design.config, qnet), b(sized_design.config, qnet);
  const ResourceEstimate ra = estimate_resources(a), rb = estimate_resources(b);
  EXPECT_LT(rb.luts, ra.luts);

  for (int trial = 0; trial < 5; ++trial) {
    const TensorF image = random_image(Shape{1, 10, 10}, rng);
    EXPECT_EQ(a.run_image(image).logits, b.run_image(image).logits);
  }
}

TEST(AccumulatorSizing, GrowsWithTimeSteps) {
  const auto conv = make_conv({3, 3, 3, 3}, 0);
  int prev = 0;
  for (const int T : {1, 2, 4, 8}) {
    const int bits = conv_accumulator_range(conv, T).required_bits;
    EXPECT_GT(bits, prev);
    prev = bits;
  }
}

}  // namespace
}  // namespace rsnn::hw
