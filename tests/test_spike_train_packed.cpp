// Regression tests for the bit-packed SpikeTrain against the original
// byte-per-bit semantics: every public accessor must behave exactly as if
// spikes were stored one uint8_t per (step, neuron).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "encoding/radix.hpp"
#include "encoding/spike_train.hpp"

namespace rsnn::encoding {
namespace {

/// The seed implementation's storage model, kept as the oracle.
class ByteTrain {
 public:
  ByteTrain(std::int64_t numel, int time_steps)
      : numel_(numel), bits_(static_cast<std::size_t>(time_steps) *
                                 static_cast<std::size_t>(numel),
                             0) {}
  bool spike(int t, std::int64_t n) const {
    return bits_[static_cast<std::size_t>(t) * static_cast<std::size_t>(numel_) +
                 static_cast<std::size_t>(n)] != 0;
  }
  void set_spike(int t, std::int64_t n, bool v) {
    bits_[static_cast<std::size_t>(t) * static_cast<std::size_t>(numel_) +
          static_cast<std::size_t>(n)] = v ? 1 : 0;
  }
  std::int64_t total_spikes() const {
    std::int64_t total = 0;
    for (const auto b : bits_) total += b;
    return total;
  }

 private:
  std::int64_t numel_;
  std::vector<std::uint8_t> bits_;
};

class PackedSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(PackedSweep, RandomPatternMatchesByteOracle) {
  const std::int64_t numel = GetParam();
  const int T = 5;
  SpikeTrain packed(Shape{numel}, T);
  ByteTrain oracle(numel, T);

  Rng rng(77 + static_cast<std::uint64_t>(numel));
  // Random sets AND clears (clears exercise the mask-off path).
  for (int round = 0; round < 3; ++round) {
    for (int t = 0; t < T; ++t) {
      for (std::int64_t n = 0; n < numel; ++n) {
        if (rng.next_bool(0.4)) {
          const bool value = rng.next_bool(0.7);
          packed.set_spike(t, n, value);
          oracle.set_spike(t, n, value);
        }
      }
    }
  }

  for (int t = 0; t < T; ++t)
    for (std::int64_t n = 0; n < numel; ++n)
      ASSERT_EQ(packed.spike(t, n), oracle.spike(t, n))
          << "t=" << t << " n=" << n << " numel=" << numel;
  EXPECT_EQ(packed.total_spikes(), oracle.total_spikes());

  for (std::int64_t n = 0; n < numel; ++n) {
    int expected = 0;
    for (int t = 0; t < T; ++t) expected += oracle.spike(t, n) ? 1 : 0;
    ASSERT_EQ(packed.spike_count(n), expected) << "n=" << n;
  }

  // Event iteration: ascending order, exactly the set bits.
  for (int t = 0; t < T; ++t) {
    std::vector<std::int64_t> events;
    packed.for_each_set_bit(t, [&](std::int64_t n) { events.push_back(n); });
    std::vector<std::int64_t> expected;
    for (std::int64_t n = 0; n < numel; ++n)
      if (oracle.spike(t, n)) expected.push_back(n);
    ASSERT_EQ(events, expected) << "t=" << t;
  }
}

// Word counts straddle the interesting boundaries: sub-word, exact single
// word, word+1, multi-word, multi-word with a partial tail.
INSTANTIATE_TEST_SUITE_P(NeuronCounts, PackedSweep,
                         ::testing::Values<std::int64_t>(1, 7, 63, 64, 65, 105,
                                                         128, 130, 300));

TEST(PackedSpikeTrain, RangeIterationRespectsBounds) {
  SpikeTrain train(Shape{200}, 2);
  for (std::int64_t n = 0; n < 200; n += 3) train.set_spike(1, n, true);

  std::vector<std::int64_t> events;
  train.for_each_set_bit_in_range(1, 10, 130,
                                  [&](std::int64_t n) { events.push_back(n); });
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front(), 12);  // first multiple of 3 in [10, 130)
  EXPECT_EQ(events.back(), 129);
  for (std::size_t i = 0; i < events.size(); ++i)
    ASSERT_EQ(events[i], 12 + static_cast<std::int64_t>(i) * 3);

  // Empty and degenerate ranges.
  events.clear();
  train.for_each_set_bit_in_range(0, 0, 200,
                                  [&](std::int64_t n) { events.push_back(n); });
  EXPECT_TRUE(events.empty());  // step 0 has no spikes
  train.for_each_set_bit_in_range(1, 50, 50,
                                  [&](std::int64_t n) { events.push_back(n); });
  EXPECT_TRUE(events.empty());
}

TEST(PackedSpikeTrain, WordAccessorExposesPackedRows) {
  SpikeTrain train(Shape{70}, 2);
  train.set_spike(0, 0, true);
  train.set_spike(0, 63, true);
  train.set_spike(0, 64, true);
  train.set_spike(1, 1, true);
  EXPECT_EQ(train.words_per_step(), 2);
  EXPECT_EQ(train.word(0, 0), (std::uint64_t{1} << 63) | 1u);
  EXPECT_EQ(train.word(0, 1), 1u);
  EXPECT_EQ(train.word(1, 0), 2u);
  EXPECT_EQ(train.word(1, 1), 0u);
  EXPECT_EQ(train.step_words(0)[1], 1u);
  EXPECT_EQ(train.spikes_at_step(0), 3);
  EXPECT_EQ(train.spikes_at_step(1), 1);
}

TEST(PackedSpikeTrain, PaddingBitsStayZeroThroughSetAndClear) {
  // 65 neurons: the second word has 63 padding bits that must never be set,
  // otherwise total_spikes / operator== would silently drift.
  SpikeTrain train(Shape{65}, 3);
  for (int t = 0; t < 3; ++t)
    for (std::int64_t n = 0; n < 65; ++n) train.set_spike(t, n, true);
  EXPECT_EQ(train.total_spikes(), 3 * 65);
  for (int t = 0; t < 3; ++t)
    EXPECT_EQ(train.word(t, 1), 1u) << "padding bits leaked at t=" << t;
  for (std::int64_t n = 0; n < 65; ++n) train.set_spike(1, n, false);
  EXPECT_EQ(train.total_spikes(), 2 * 65);
}

TEST(PackedSpikeTrain, ReshapePreservesBitsAndEquality) {
  Rng rng(31);
  SpikeTrain train(Shape{3, 5, 7}, 4);
  for (int t = 0; t < 4; ++t)
    for (std::int64_t n = 0; n < 105; ++n)
      train.set_spike(t, n, rng.next_bool(0.3));

  const SpikeTrain flat = train.reshaped(Shape{105});
  EXPECT_EQ(flat.neuron_shape(), Shape{105});
  for (int t = 0; t < 4; ++t)
    for (std::int64_t n = 0; n < 105; ++n)
      ASSERT_EQ(flat.spike(t, n), train.spike(t, n));
  EXPECT_EQ(flat.total_spikes(), train.total_spikes());

  // Equality is shape-sensitive but bit-exact.
  EXPECT_FALSE(flat == train);
  EXPECT_TRUE(train == train.reshaped(Shape{3, 5, 7}));
  EXPECT_THROW(train.reshaped(Shape{104}), ContractViolation);
}

TEST(PackedSpikeTrain, RadixRoundTripOnNonMultipleOf64) {
  // End-to-end through the encoder: 105 neurons, all codes distinct.
  Rng rng(53);
  TensorI codes(Shape{3, 5, 7});
  for (std::int64_t i = 0; i < codes.numel(); ++i)
    codes.at_flat(i) = static_cast<std::int32_t>(rng.next_below(16));
  const SpikeTrain train = radix_encode_codes(codes, 4);
  EXPECT_EQ(radix_decode_codes(train), codes);
}

TEST(PackedSpikeTrain, BoundsCheckedInCheckedBuilds) {
  // The test targets compile with RSNN_CHECKED, so the DCHECK tier throws.
  SpikeTrain train(Shape{4}, 2);
  EXPECT_THROW(train.spike(2, 0), ContractViolation);
  EXPECT_THROW(train.spike(0, 4), ContractViolation);
  EXPECT_THROW(train.word(0, 1), ContractViolation);
}

}  // namespace
}  // namespace rsnn::encoding
