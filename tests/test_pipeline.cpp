// Partitioned execution: pipeline-parallel runs over ProgramSegments must be
// bit-identical to monolithic execution on every engine, per-segment
// resource/power reports must sum exactly to the monolithic reports, and the
// compiler partitioners must produce valid, optimal/feasible partitions.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "compiler/partition.hpp"
#include "engine/engine.hpp"
#include "engine/pipeline.hpp"
#include "hw/accelerator.hpp"
#include "hw/power_model.hpp"
#include "hw/resource_model.hpp"
#include "nn/zoo.hpp"
#include "quant/quantize.hpp"
#include "test_helpers.hpp"

namespace rsnn::engine {
namespace {

/// LeNet-5 at T=4 on the paper's reference design — the acceptance workload.
struct LeNetFixture {
  quant::QuantizedNetwork qnet;
  ir::LayerProgram program;

  LeNetFixture() {
    Rng rng(2024);
    nn::Network lenet = nn::make_lenet5();
    lenet.init_params(rng);
    qnet = quant::quantize(lenet, quant::QuantizeConfig{3, 4});
    program = ir::lower(qnet, hw::lenet_reference_config());
  }
};

std::vector<TensorI> lenet_batch(int count, int T) {
  Rng rng(77);
  std::vector<TensorI> codes;
  for (int i = 0; i < count; ++i)
    codes.push_back(quant::encode_activations(
        rsnn::testing::random_image(Shape{1, 32, 32}, rng), T));
  return codes;
}

void expect_identical(const hw::AccelRunResult& run,
                      const hw::AccelRunResult& ref, const char* what) {
  EXPECT_EQ(run.logits, ref.logits) << what;
  EXPECT_EQ(run.predicted_class, ref.predicted_class) << what;
  EXPECT_EQ(run.total_cycles, ref.total_cycles) << what;
  EXPECT_EQ(run.total_adder_ops, ref.total_adder_ops) << what;
  EXPECT_EQ(run.dram_bits, ref.dram_bits) << what;
  EXPECT_EQ(run.traffic_total.act_read_bits, ref.traffic_total.act_read_bits)
      << what;
  EXPECT_EQ(run.traffic_total.act_write_bits, ref.traffic_total.act_write_bits)
      << what;
  EXPECT_EQ(run.traffic_total.weight_read_bits,
            ref.traffic_total.weight_read_bits)
      << what;
  ASSERT_EQ(run.layers.size(), ref.layers.size()) << what;
  for (std::size_t li = 0; li < run.layers.size(); ++li) {
    EXPECT_EQ(run.layers[li].cycles, ref.layers[li].cycles)
        << what << " layer " << li;
    EXPECT_EQ(run.layers[li].adder_ops, ref.layers[li].adder_ops)
        << what << " layer " << li;
    EXPECT_EQ(run.layers[li].input_spikes, ref.layers[li].input_spikes)
        << what << " layer " << li;
  }
}

// ---------------------------------------------------- segment model (ir)

TEST(ProgramSegments, MakeSegmentsComputesBoundariesAndAggregates) {
  const LeNetFixture fx;
  const auto segments = ir::make_segments(fx.program, {3, 5});
  ASSERT_EQ(segments.size(), 3u);

  EXPECT_EQ(segments[0].begin, 0u);
  EXPECT_EQ(segments[0].end, 3u);
  EXPECT_EQ(segments[1].begin, 3u);
  EXPECT_EQ(segments[1].end, 5u);
  EXPECT_EQ(segments[2].begin, 5u);
  EXPECT_EQ(segments[2].end, fx.program.size());
  EXPECT_FALSE(segments[0].final_segment);
  EXPECT_TRUE(segments[2].final_segment);

  // Cut interfaces: a segment's in_shape is its predecessor's out_shape.
  EXPECT_EQ(segments[0].in_shape, fx.program.op(0).in_shape);
  EXPECT_EQ(segments[1].in_shape, segments[0].out_shape);
  EXPECT_EQ(segments[2].in_shape, segments[1].out_shape);

  // Aggregates sum to the monolithic program totals.
  std::int64_t cycles = 0, params = 0;
  for (const auto& seg : segments) {
    cycles += seg.predicted_cycles;
    params += seg.param_bits;
  }
  EXPECT_EQ(cycles, fx.program.predicted_total_cycles());
  std::int64_t op_params = 0;
  for (const ir::LayerOp& op : fx.program.ops()) op_params += op.param_bits;
  EXPECT_EQ(params, op_params);

  // A segment downstream of the flatten enters through the 1-D buffers.
  const auto around_flatten =
      ir::make_segments(fx.program, {fx.program.size() - 1});
  EXPECT_TRUE(around_flatten[1].in_is_1d);
  EXPECT_FALSE(around_flatten[0].in_is_1d);
}

TEST(ProgramSegments, RejectsInvalidCuts) {
  const LeNetFixture fx;
  EXPECT_THROW(ir::make_segments(fx.program, {0}), ContractViolation);
  EXPECT_THROW(ir::make_segments(fx.program, {fx.program.size()}),
               ContractViolation);
  EXPECT_THROW(ir::make_segments(fx.program, {4, 4}), ContractViolation);
  EXPECT_THROW(ir::make_segments(fx.program, {5, 3}), ContractViolation);
}

// ------------------------------------------------------- partitioners

TEST(Partitioners, BalanceLatencyMinimizesBottleneck) {
  const LeNetFixture fx;
  const std::size_t n = fx.program.size();
  const auto bottleneck = [&](const std::vector<ir::ProgramSegment>& segs) {
    std::int64_t worst = 0;
    for (const auto& seg : segs) worst = std::max(worst, seg.predicted_cycles);
    return worst;
  };

  for (const int k : {1, 2, 3, 4}) {
    const auto segments =
        compiler::partition_balance_latency(fx.program, k);
    ASSERT_EQ(segments.size(), static_cast<std::size_t>(k));
    EXPECT_EQ(segments.front().begin, 0u);
    EXPECT_EQ(segments.back().end, n);

    // Exhaustively verify optimality for small k: no choice of cut points
    // achieves a smaller maximum segment latency.
    if (k == 2) {
      for (std::size_t cut = 1; cut < n; ++cut)
        EXPECT_LE(bottleneck(segments),
                  bottleneck(ir::make_segments(fx.program, {cut})));
    }
    if (k == 3) {
      for (std::size_t a = 1; a < n; ++a)
        for (std::size_t b = a + 1; b < n; ++b)
          EXPECT_LE(bottleneck(segments),
                    bottleneck(ir::make_segments(fx.program, {a, b})));
    }
  }

  EXPECT_THROW(compiler::partition_balance_latency(fx.program, 0),
               ContractViolation);
  EXPECT_THROW(compiler::partition_balance_latency(
                   fx.program, static_cast<int>(n) + 1),
               ContractViolation);
}

TEST(Partitioners, FitResourcesPacksUnderDeviceBudget) {
  const LeNetFixture fx;
  std::int64_t total_bits = 0, largest = 0;
  for (const ir::LayerOp& op : fx.program.ops()) {
    total_bits += op.param_bits;
    largest = std::max(largest, op.param_bits);
  }

  // A device that holds the whole model needs no pipeline.
  EXPECT_EQ(compiler::partition_fit_resources(fx.program, total_bits).size(),
            1u);

  // A budget of the largest single layer: every segment must fit, or be a
  // singleton (that device streams from DRAM).
  const auto tight = compiler::partition_fit_resources(fx.program, largest);
  EXPECT_GT(tight.size(), 1u);
  for (const auto& seg : tight)
    EXPECT_TRUE(seg.param_bits <= largest || seg.size() == 1)
        << "segment [" << seg.begin << ", " << seg.end << ")";

  // A budget below the largest layer forces that layer into a singleton.
  const auto starved =
      compiler::partition_fit_resources(fx.program, largest / 2);
  bool found_singleton_over_budget = false;
  for (const auto& seg : starved)
    if (seg.size() == 1 && seg.param_bits > largest / 2)
      found_singleton_over_budget = true;
  EXPECT_TRUE(found_singleton_over_budget);

  EXPECT_THROW(compiler::partition_fit_resources(fx.program, 0),
               ContractViolation);
}

TEST(Partitioners, ParsePartitionNamesRoundTrip) {
  using compiler::PartitionStrategy;
  EXPECT_EQ(compiler::parse_partition("balance_latency"),
            PartitionStrategy::kBalanceLatency);
  EXPECT_EQ(compiler::parse_partition("balance"),
            PartitionStrategy::kBalanceLatency);
  EXPECT_EQ(compiler::parse_partition("fit_resources"),
            PartitionStrategy::kFitResources);
  EXPECT_EQ(compiler::parse_partition("fit"),
            PartitionStrategy::kFitResources);
  EXPECT_STREQ(compiler::partition_name(PartitionStrategy::kBalanceLatency),
               "balance_latency");
  EXPECT_STREQ(compiler::partition_name(PartitionStrategy::kFitResources),
               "fit_resources");
  EXPECT_THROW(compiler::parse_partition("round_robin"), ContractViolation);
  EXPECT_THROW(compiler::parse_partition(""), ContractViolation);
}

// ------------------------------------- pipeline equivalence (acceptance)

/// For every engine, a 2- and 3-segment LeNet pipeline must produce
/// bit-identical logits and identical summed cycles / adder ops / traffic
/// to the monolithic run.
class PipelineEquivalence : public ::testing::TestWithParam<EngineKind> {};

TEST_P(PipelineEquivalence, LeNetSegmentedMatchesMonolithic) {
  const LeNetFixture fx;
  const auto batch = lenet_batch(4, fx.qnet.time_bits);

  const auto monolithic = make_engine(GetParam(), fx.program);
  std::vector<hw::AccelRunResult> reference;
  for (const TensorI& codes : batch)
    reference.push_back(monolithic->run_codes(codes));

  for (const int stages : {2, 3}) {
    const auto segments =
        compiler::partition_balance_latency(fx.program, stages);
    PipelineExecutor pipe(fx.program, segments, GetParam(),
                          /*queue_capacity=*/2);
    ASSERT_EQ(pipe.stages(), stages);

    const auto results = pipe.run_pipeline(batch);
    ASSERT_EQ(results.size(), batch.size());
    EXPECT_EQ(pipe.last_stats().images,
              static_cast<std::int64_t>(batch.size()));
    EXPECT_GT(pipe.last_stats().images_per_sec, 0.0);

    for (std::size_t i = 0; i < batch.size(); ++i) {
      SCOPED_TRACE(::testing::Message() << stages << " stages, image " << i);
      ASSERT_EQ(results[i].layers.size(), fx.program.size());
      expect_identical(results[i], reference[i], "pipeline vs monolithic");
    }

    // A second batch through the same warm pipeline (reused worker state)
    // must agree as well.
    const auto again = pipe.run_pipeline(batch);
    for (std::size_t i = 0; i < batch.size(); ++i)
      EXPECT_EQ(again[i].logits, reference[i].logits) << "warm image " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, PipelineEquivalence,
    ::testing::Values(EngineKind::kCycleAccurate, EngineKind::kAnalytic,
                      EngineKind::kBehavioral, EngineKind::kReference),
    [](const ::testing::TestParamInfo<EngineKind>& info) {
      return std::string(engine_name(info.param));
    });

TEST(Pipeline, EveryInteriorCutMatchesMonolithicCycleAccurate) {
  // Sweep every 2-stage cut position (including right after the flatten, the
  // 1-D entry path) on the bit-true engine.
  const LeNetFixture fx;
  const auto batch = lenet_batch(1, fx.qnet.time_bits);
  const auto monolithic =
      make_engine(EngineKind::kCycleAccurate, fx.program);
  const hw::AccelRunResult ref = monolithic->run_codes(batch[0]);

  for (std::size_t cut = 1; cut < fx.program.size(); ++cut) {
    PipelineExecutor pipe(fx.program, ir::make_segments(fx.program, {cut}),
                          EngineKind::kCycleAccurate);
    const auto results = pipe.run_pipeline(batch);
    SCOPED_TRACE(::testing::Message() << "cut at op " << cut);
    expect_identical(results[0], ref, "2-stage sweep");
  }
}

TEST(Pipeline, SegmentEnginesComposeManually) {
  // run_segment chaining by hand (no executor): boundary codes of stage s
  // feed stage s+1; merged stats equal the monolithic run.
  const LeNetFixture fx;
  const auto batch = lenet_batch(1, fx.qnet.time_bits);
  const auto monolithic = make_engine(EngineKind::kAnalytic, fx.program);
  const hw::AccelRunResult ref = monolithic->run_codes(batch[0]);

  const auto segments = compiler::partition_balance_latency(fx.program, 3);
  hw::AccelRunResult merged;
  TensorI codes = batch[0];
  for (const auto& seg : segments) {
    auto engine = make_engine(EngineKind::kAnalytic, fx.program, seg);
    EXPECT_EQ(engine->segment().begin, seg.begin);
    SegmentRunResult stage = engine->run_segment(codes);
    hw::merge_segment_result(merged, std::move(stage.stats));
    if (!seg.final_segment) {
      EXPECT_EQ(stage.boundary_codes.shape(), seg.out_shape);
      codes = std::move(stage.boundary_codes);
    }
  }
  hw::finalize_run(merged, fx.program.config().cycle_ns());
  expect_identical(merged, ref, "manual composition");

  // Stage engines refuse the whole-program entry point.
  auto stage = make_engine(EngineKind::kAnalytic, fx.program, segments[1]);
  EXPECT_THROW(stage->run_codes(batch[0]), ContractViolation);
}

TEST(Pipeline, EmptyBatchAndShapeErrors) {
  const LeNetFixture fx;
  const auto segments = compiler::partition_balance_latency(fx.program, 2);
  PipelineExecutor pipe(fx.program, segments, EngineKind::kReference);

  const auto results = pipe.run_pipeline({});
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(pipe.last_stats().images, 0);
  EXPECT_EQ(pipe.last_stats().stages, 2);

  // A malformed image fails the batch with the stage's contract violation
  // and leaves the executor usable.
  std::vector<TensorI> bad{TensorI(Shape{1, 8, 8})};
  EXPECT_THROW(pipe.run_pipeline(bad), ContractViolation);
  const auto batch = lenet_batch(2, fx.qnet.time_bits);
  const auto ok = pipe.run_pipeline(batch);
  EXPECT_EQ(ok.size(), batch.size());
  EXPECT_FALSE(ok[0].logits.empty());
}

// ------------------------------- resource / power partition (acceptance)

TEST(Pipeline, SegmentResourceReportsSumToMonolithic) {
  const LeNetFixture fx;
  const hw::ResourceEstimate whole = hw::estimate_resources(fx.program);
  EXPECT_GT(whole.luts, 0);
  EXPECT_GT(whole.bram_bits, 0);

  for (const int stages : {2, 3, 4}) {
    const auto segments =
        compiler::partition_balance_latency(fx.program, stages);
    const auto parts = hw::partition_resources(fx.program, segments);
    ASSERT_EQ(parts.size(), segments.size());

    hw::ResourceEstimate sum;
    for (const auto& part : parts) {
      EXPECT_GE(part.luts, 0);
      EXPECT_GE(part.flip_flops, 0);
      EXPECT_GE(part.bram_bits, 0);
      sum += part;
    }
    EXPECT_EQ(sum.luts, whole.luts) << stages << " stages";
    EXPECT_EQ(sum.flip_flops, whole.flip_flops) << stages << " stages";
    EXPECT_EQ(sum.bram_bits, whole.bram_bits) << stages << " stages";

    // Each segment carries exactly its own on-chip parameter storage.
    for (std::size_t s = 0; s < parts.size(); ++s)
      EXPECT_GE(parts[s].bram_bits, segments[s].onchip_param_bits);
  }
}

TEST(Pipeline, SegmentPowerReportsSumToMonolithic) {
  const LeNetFixture fx;
  const auto batch = lenet_batch(1, fx.qnet.time_bits);
  const auto engine = make_engine(EngineKind::kAnalytic, fx.program);
  const hw::AccelRunResult run = engine->run_codes(batch[0]);

  const hw::ResourceEstimate resources = hw::estimate_resources(fx.program);
  const hw::PowerBreakdown whole = hw::estimate_power(
      fx.program.config(), resources, run, fx.program.uses_dram());

  const auto segments = compiler::partition_balance_latency(fx.program, 3);
  const auto seg_resources = hw::partition_resources(fx.program, segments);
  const auto seg_power =
      hw::partition_power(fx.program.config(), seg_resources, segments, run,
                          fx.program.uses_dram());
  ASSERT_EQ(seg_power.size(), segments.size());

  hw::PowerBreakdown sum;
  for (const auto& p : seg_power) {
    EXPECT_GE(p.total_w(), 0.0);
    sum.static_w += p.static_w;
    sum.clock_w += p.clock_w;
    sum.logic_w += p.logic_w;
    sum.bram_w += p.bram_w;
    sum.dram_w += p.dram_w;
  }
  EXPECT_DOUBLE_EQ(sum.static_w, whole.static_w);
  EXPECT_DOUBLE_EQ(sum.clock_w, whole.clock_w);
  EXPECT_DOUBLE_EQ(sum.logic_w, whole.logic_w);
  EXPECT_DOUBLE_EQ(sum.bram_w, whole.bram_w);
  EXPECT_DOUBLE_EQ(sum.dram_w, whole.dram_w);
}

}  // namespace
}  // namespace rsnn::engine
