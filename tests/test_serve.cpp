// Serving daemon subsystem: the wire protocol must round-trip every frame
// and reject malformed bytes with friendly diagnostics (never a crash or an
// unbounded allocation), the multi-model registry must route by model id
// and hot-swap without dropping admitted work (in-flight futures resolve
// kOk with the *old* generation's bit-identical logits), and a live Server
// over a loopback socket must serve the same logits as in-process
// execution while answering protocol violations with one Error frame.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "compiler/compile.hpp"
#include "engine/engine.hpp"
#include "engine/fault.hpp"
#include "quant/qserialize.hpp"
#include "quant/quantize.hpp"
#include "serve/client.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "serve/socket.hpp"
#include "serve/wire.hpp"
#include "test_helpers.hpp"

namespace rsnn::serve {
namespace {

using engine::PriorityClass;
using engine::ReplicaHealth;
using engine::RequestStatus;

/// Two small quantized networks with distinct weights (input [1, 10, 10],
/// four classes, T=3) — distinguishable logits for the hot-swap tests.
quant::QuantizedNetwork make_qnet(std::uint64_t seed) {
  Rng rng(seed);
  nn::Network net = rsnn::testing::small_random_net(rng);
  return quant::quantize(net, quant::QuantizeConfig{3, 3});
}

TensorI encode_image(const quant::QuantizedNetwork& qnet, std::uint64_t seed) {
  Rng rng(seed);
  return quant::encode_activations(
      rsnn::testing::random_image(qnet.input_shape, rng), qnet.time_bits);
}

/// Reference logits: compile the same network with the registry's options
/// and run the codes monolithically.
std::vector<std::int64_t> reference_logits(const quant::QuantizedNetwork& qnet,
                                           const RegistryOptions& options,
                                           const TensorI& codes) {
  const auto design = compiler::compile(qnet, options.compile);
  return engine::make_engine(options.kind, design.program)
      ->run_codes(codes)
      .logits;
}

// -------------------------------------------------------- wire round trips

TEST(Wire, HeaderRoundTripAndRejection) {
  std::uint8_t bytes[kHeaderBytes];
  encode_header(FrameType::kInfer, 123, bytes);
  FrameHeader header;
  ASSERT_TRUE(decode_header(bytes, &header).empty());
  EXPECT_EQ(header.version, kProtocolVersion);
  EXPECT_EQ(header.type, FrameType::kInfer);
  EXPECT_EQ(header.payload_len, 123u);

  // Bad magic: the diagnostic names what arrived.
  encode_header(FrameType::kInfer, 0, bytes);
  bytes[0] ^= 0xFF;
  std::string error = decode_header(bytes, &header);
  EXPECT_NE(error.find("magic"), std::string::npos) << error;

  // Version is checked for exact equality — newer and older both refuse.
  encode_header(FrameType::kInfer, 0, bytes);
  bytes[4] = static_cast<std::uint8_t>(kProtocolVersion + 1);
  error = decode_header(bytes, &header);
  EXPECT_NE(error.find("version"), std::string::npos) << error;

  // Unknown frame type.
  encode_header(FrameType::kInfer, 0, bytes);
  bytes[6] = 99;
  bytes[7] = 0;
  error = decode_header(bytes, &header);
  EXPECT_NE(error.find("type"), std::string::npos) << error;

  // Payload length over the cap: refused before any allocation.
  encode_header(FrameType::kInfer, 0, bytes);
  const std::uint32_t oversize = kMaxPayloadBytes + 1;
  std::memcpy(bytes + 8, &oversize, 4);
  error = decode_header(bytes, &header);
  EXPECT_NE(error.find("payload"), std::string::npos) << error;
}

TEST(Wire, InferFramesRoundTrip) {
  InferRequest request;
  request.model_id = "lenet";
  request.options.priority = PriorityClass::kBulk;
  request.options.admission = engine::AdmissionMode::kNonBlocking;
  request.options.deadline_ms = 12.5;
  request.codes = encode_image(make_qnet(1), 7);

  InferRequest decoded_request;
  ASSERT_TRUE(decode(encode(request), &decoded_request).empty());
  EXPECT_EQ(decoded_request.model_id, "lenet");
  EXPECT_EQ(decoded_request.options.priority, PriorityClass::kBulk);
  EXPECT_EQ(decoded_request.options.admission,
            engine::AdmissionMode::kNonBlocking);
  EXPECT_DOUBLE_EQ(decoded_request.options.deadline_ms, 12.5);
  EXPECT_EQ(decoded_request.codes.shape().dims(),
            request.codes.shape().dims());
  ASSERT_EQ(decoded_request.codes.numel(), request.codes.numel());
  for (std::int64_t i = 0; i < request.codes.numel(); ++i)
    ASSERT_EQ(decoded_request.codes.at_flat(i), request.codes.at_flat(i));

  InferReply reply;
  reply.status = RequestStatus::kOk;
  reply.logits = {-7, 42, 0, 1};
  reply.predicted_class = 1;
  reply.total_cycles = 987654;
  reply.latency_us = 3.25;
  reply.attempts = 2;
  reply.replica = 1;

  InferReply decoded_reply;
  ASSERT_TRUE(decode(encode(reply), &decoded_reply).empty());
  EXPECT_EQ(decoded_reply.status, RequestStatus::kOk);
  EXPECT_EQ(decoded_reply.logits, reply.logits);
  EXPECT_EQ(decoded_reply.predicted_class, 1);
  EXPECT_EQ(decoded_reply.total_cycles, 987654);
  EXPECT_DOUBLE_EQ(decoded_reply.latency_us, 3.25);
  EXPECT_EQ(decoded_reply.attempts, 2);
  EXPECT_EQ(decoded_reply.replica, 1);
}

TEST(Wire, ControlFramesRoundTrip) {
  LoadModelRequest load;
  load.model_id = "vgg";
  load.path = "/models/vgg.qsnn";
  LoadModelRequest load_out;
  ASSERT_TRUE(decode(encode(load), &load_out).empty());
  EXPECT_EQ(load_out.model_id, "vgg");
  EXPECT_EQ(load_out.path, "/models/vgg.qsnn");

  LoadModelReply load_reply;
  load_reply.ok = true;
  load_reply.swapped = true;
  load_reply.detail = "hot-swapped 'vgg'";
  LoadModelReply load_reply_out;
  ASSERT_TRUE(decode(encode(load_reply), &load_reply_out).empty());
  EXPECT_TRUE(load_reply_out.ok);
  EXPECT_TRUE(load_reply_out.swapped);
  EXPECT_EQ(load_reply_out.detail, "hot-swapped 'vgg'");

  HealthReply health;
  ModelHealth model;
  model.model_id = "lenet";
  model.generation = 3;
  model.time_bits = 4;
  model.input_dims = {1, 32, 32};
  model.replicas = 2;
  model.active_replicas = 1;
  model.replica_health = {ReplicaHealth::kHealthy,
                          ReplicaHealth::kQuarantined};
  health.models.push_back(model);
  HealthReply health_out;
  ASSERT_TRUE(decode(encode(health), &health_out).empty());
  ASSERT_EQ(health_out.models.size(), 1u);
  EXPECT_EQ(health_out.models[0].model_id, "lenet");
  EXPECT_EQ(health_out.models[0].generation, 3u);
  EXPECT_EQ(health_out.models[0].input_dims, (std::vector<std::int64_t>{1, 32, 32}));
  EXPECT_EQ(health_out.models[0].replica_health,
            (std::vector<ReplicaHealth>{ReplicaHealth::kHealthy,
                                        ReplicaHealth::kQuarantined}));

  MetricsReply metrics;
  ModelMetrics m;
  m.model_id = "lenet";
  m.submitted = 100;
  m.completed = 90;
  m.retries = 8;
  m.stalls = 2;
  m.expected_attempts_per_image = 100.0 / 90.0;
  m.p99_latency_ms = 9.5;
  m.replica_health = {ReplicaHealth::kDegraded};
  metrics.models.push_back(m);
  MetricsReply metrics_out;
  ASSERT_TRUE(decode(encode(metrics), &metrics_out).empty());
  ASSERT_EQ(metrics_out.models.size(), 1u);
  EXPECT_EQ(metrics_out.models[0].completed, 90);
  EXPECT_EQ(metrics_out.models[0].retries, 8);
  EXPECT_DOUBLE_EQ(metrics_out.models[0].expected_attempts_per_image,
                   100.0 / 90.0);
  EXPECT_DOUBLE_EQ(metrics_out.models[0].p99_latency_ms, 9.5);

  ShutdownRequest shutdown;
  shutdown.drain = false;
  ShutdownRequest shutdown_out;
  ASSERT_TRUE(decode(encode(shutdown), &shutdown_out).empty());
  EXPECT_FALSE(shutdown_out.drain);

  ErrorReply error;
  error.message = "bad magic";
  ErrorReply error_out;
  ASSERT_TRUE(decode(encode(error), &error_out).empty());
  EXPECT_EQ(error_out.message, "bad magic");
}

// ---------------------------------------------------- malformed payloads

TEST(Wire, RejectsTruncatedAndTrailingPayloads) {
  InferRequest request;
  request.model_id = "m";
  request.codes = encode_image(make_qnet(1), 3);
  const std::vector<std::uint8_t> payload = encode(request);

  // Every truncation point must fail cleanly, never crash or misparse.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{2}, payload.size() / 2,
        payload.size() - 1}) {
    InferRequest out;
    const std::vector<std::uint8_t> truncated(payload.begin(),
                                              payload.begin() + keep);
    EXPECT_FALSE(decode(truncated, &out).empty()) << keep << " bytes kept";
  }

  // Trailing garbage is a protocol error, not ignored slack.
  std::vector<std::uint8_t> padded = payload;
  padded.push_back(0);
  InferRequest out;
  const std::string error = decode(padded, &out);
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;
}

TEST(Wire, RejectsTensorBombsWithoutAllocating) {
  // Handcraft an InferRequest whose tensor claims absurd shapes; the decoder
  // must refuse on the *claimed* sizes, before allocating element storage.
  const auto bomb = [](std::uint32_t rank,
                       std::int64_t dim) -> std::vector<std::uint8_t> {
    Writer w;
    w.str("m");
    w.u8(0);        // priority
    w.u8(0);        // admission
    w.f64(0.0);     // deadline
    w.u32(rank);    // tensor rank
    for (std::uint32_t d = 0; d < rank && d < 16; ++d) w.i64(dim);
    return w.take();
  };

  InferRequest out;
  EXPECT_FALSE(decode(bomb(0, 1), &out).empty()) << "rank 0";
  EXPECT_FALSE(decode(bomb(9, 1), &out).empty()) << "rank over the cap";
  EXPECT_FALSE(decode(bomb(3, std::int64_t{1} << 40), &out).empty())
      << "dim over the cap";
  EXPECT_FALSE(decode(bomb(3, -4), &out).empty()) << "negative dim";
  // Dims individually legal but multiplying past the payload cap.
  EXPECT_FALSE(decode(bomb(4, 1 << 20), &out).empty()) << "numel bomb";
  // Legal header claiming more elements than bytes present.
  EXPECT_FALSE(decode(bomb(1, 1 << 20), &out).empty()) << "missing elements";
}

TEST(Wire, RejectsOutOfRangeEnums) {
  Writer w;
  w.str("m");
  w.u8(7);  // priority out of range
  w.u8(0);
  w.f64(0.0);
  Writer tensor_writer;
  TensorI codes(Shape{1, 1, 1}, std::vector<std::int32_t>{1});
  w.tensor(codes);
  InferRequest out;
  const std::string error = decode(w.take(), &out);
  EXPECT_FALSE(error.empty());
}

// --------------------------------------------------------------- registry

RegistryOptions small_registry_options() {
  RegistryOptions options;
  options.kind = engine::EngineKind::kReference;
  return options;
}

TEST(Registry, ServesConcurrentModelsRoutedById) {
  const RegistryOptions options = small_registry_options();
  const quant::QuantizedNetwork net_a = make_qnet(11);
  const quant::QuantizedNetwork net_b = make_qnet(22);
  const TensorI codes = encode_image(net_a, 5);
  const std::vector<std::int64_t> logits_a =
      reference_logits(net_a, options, codes);
  const std::vector<std::int64_t> logits_b =
      reference_logits(net_b, options, codes);
  ASSERT_NE(logits_a, logits_b) << "fixtures must be distinguishable";

  ModelRegistry registry(options);
  ASSERT_TRUE(registry.load_network("a", net_a).empty());
  ASSERT_TRUE(registry.load_network("b", net_b).empty());
  EXPECT_TRUE(registry.has_model("a"));
  EXPECT_TRUE(registry.has_model("b"));
  EXPECT_EQ(registry.model_ids(), (std::vector<std::string>{"a", "b"}));

  // Two models served concurrently, each with its own bit-identical logits.
  engine::Request to_a;
  to_a.model_id = "a";
  to_a.codes = codes;
  engine::Request to_b;
  to_b.model_id = "b";
  to_b.codes = codes;
  auto future_a = registry.submit(std::move(to_a));
  auto future_b = registry.submit(std::move(to_b));

  const engine::ServingResult result_a = future_a.get();
  const engine::ServingResult result_b = future_b.get();
  ASSERT_EQ(result_a.status, RequestStatus::kOk) << result_a.error;
  ASSERT_EQ(result_b.status, RequestStatus::kOk) << result_b.error;
  EXPECT_EQ(result_a.result.logits, logits_a);
  EXPECT_EQ(result_b.result.logits, logits_b);

  // Unknown ids resolve immediately, typed, without queueing.
  engine::Request lost;
  lost.model_id = "nope";
  lost.codes = codes;
  bool admitted = true;
  auto rejected = registry.submit(std::move(lost), &admitted);
  EXPECT_FALSE(admitted);
  const engine::ServingResult miss = rejected.get();
  EXPECT_EQ(miss.status, RequestStatus::kRejected);
  EXPECT_NE(miss.error.find("nope"), std::string::npos) << miss.error;

  // Unload drains; the slot is gone afterwards.
  ASSERT_TRUE(registry.unload_model("b").empty());
  EXPECT_FALSE(registry.has_model("b"));
  EXPECT_FALSE(registry.unload_model("b").empty());

  const auto snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].model_id, "a");
  EXPECT_EQ(snapshot[0].stats.completed, 1);
}

TEST(Registry, HotSwapResolvesInFlightWorkWithOldModelLogits) {
  // Stall the old generation's replica so admitted work is genuinely
  // in-flight when the swap lands; every such future must resolve kOk with
  // the OLD model's bit-identical logits (the drain guarantee), while work
  // submitted after the swap is served by the new generation.
  RegistryOptions options = small_registry_options();
  std::string fault_error;
  ASSERT_TRUE(engine::parse_fault_plan("seed:1,stall:r0@1x80",
                                       &options.pool.fault_plan, &fault_error))
      << fault_error;

  const quant::QuantizedNetwork old_net = make_qnet(11);
  const quant::QuantizedNetwork new_net = make_qnet(22);
  const TensorI codes = encode_image(old_net, 5);
  const std::vector<std::int64_t> old_logits =
      reference_logits(old_net, options, codes);
  const std::vector<std::int64_t> new_logits =
      reference_logits(new_net, options, codes);
  ASSERT_NE(old_logits, new_logits);

  ModelRegistry registry(options);
  bool swapped = true;
  ASSERT_TRUE(registry.load_network("m", old_net, &swapped).empty());
  EXPECT_FALSE(swapped);

  // Admit a burst; the stall keeps most of it queued on the old pool.
  std::vector<std::future<engine::ServingResult>> in_flight;
  for (int i = 0; i < 6; ++i) {
    engine::Request request;
    request.model_id = "m";
    request.codes = codes;
    in_flight.push_back(registry.submit(std::move(request)));
  }

  ASSERT_TRUE(registry.load_network("m", new_net, &swapped).empty());
  EXPECT_TRUE(swapped);

  for (auto& future : in_flight) {
    const engine::ServingResult result = future.get();
    ASSERT_EQ(result.status, RequestStatus::kOk) << result.error;
    EXPECT_EQ(result.result.logits, old_logits)
        << "admitted work must complete on the generation that admitted it";
  }

  engine::Request fresh;
  fresh.model_id = "m";
  fresh.codes = codes;
  const engine::ServingResult after = registry.submit(std::move(fresh)).get();
  ASSERT_EQ(after.status, RequestStatus::kOk) << after.error;
  EXPECT_EQ(after.result.logits, new_logits);

  const auto snapshot = registry.snapshot("m");
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].generation, 2u) << "every load bumps the generation";
}

TEST(Registry, LoadModelValidatesIdsAndPaths) {
  ModelRegistry registry(small_registry_options());
  EXPECT_FALSE(registry.load_model("", "x.qsnn").empty());
  EXPECT_FALSE(registry.load_model("m", "no_such_file.qsnn").empty());
  EXPECT_FALSE(registry.load_model("m", "not_a_model.txt").empty());

  const std::string path = "test_serve_registry.qsnn";
  quant::save_quantized(make_qnet(11), path);
  EXPECT_TRUE(registry.load_model("m", path).empty());
  EXPECT_TRUE(registry.has_model("m"));
  std::remove(path.c_str());
}

// ------------------------------------------------- live server, loopback

/// Registry + started Server on an ephemeral port, torn down in order.
struct LiveServer {
  RegistryOptions options = small_registry_options();
  ModelRegistry registry;
  Server server;

  LiveServer() : registry(options), server(registry) {
    const std::string error = server.start();
    RSNN_REQUIRE(error.empty(), "test server failed to start: " << error);
  }
  ~LiveServer() { server.stop(); }
};

TEST(ServeEndToEnd, FullSessionAgainstLiveServer) {
  LiveServer live;
  const quant::QuantizedNetwork net_a = make_qnet(11);
  const quant::QuantizedNetwork net_b = make_qnet(22);
  const TensorI codes = encode_image(net_a, 5);
  const std::vector<std::int64_t> logits_a =
      reference_logits(net_a, live.options, codes);
  ASSERT_TRUE(live.registry.load_network("a", net_a).empty());

  Client client;
  ASSERT_TRUE(client.connect_loopback(live.server.port()).empty());

  // Health surfaces the model's input contract.
  HealthReply health;
  ASSERT_TRUE(client.health("", &health).empty());
  ASSERT_EQ(health.models.size(), 1u);
  EXPECT_EQ(health.models[0].model_id, "a");
  EXPECT_EQ(health.models[0].time_bits, 3);
  EXPECT_EQ(health.models[0].input_dims,
            (std::vector<std::int64_t>{1, 10, 10}));
  EXPECT_EQ(health.models[0].replicas, 1);
  EXPECT_EQ(health.models[0].active_replicas, 1);

  // Inference over the wire serves the same logits as in-process execution.
  InferRequest request;
  request.model_id = "a";
  request.codes = codes;
  InferReply reply;
  ASSERT_TRUE(client.infer(request, &reply).empty());
  ASSERT_EQ(reply.status, RequestStatus::kOk) << reply.error;
  EXPECT_EQ(reply.logits, logits_a);
  EXPECT_GT(reply.total_cycles, 0);
  EXPECT_EQ(reply.attempts, 1);

  // Unknown model id is an application-level reply — typed kRejected with a
  // diagnostic — and the connection stays open.
  request.model_id = "nope";
  ASSERT_TRUE(client.infer(request, &reply).empty());
  EXPECT_EQ(reply.status, RequestStatus::kRejected);
  EXPECT_NE(reply.error.find("nope"), std::string::npos) << reply.error;
  ASSERT_TRUE(client.health("", &health).empty())
      << "the connection survives application errors";

  // Load a second model from a file, then hot-swap it over the same id.
  const std::string path = "test_serve_e2e.qsnn";
  quant::save_quantized(net_b, path);
  LoadModelReply load_reply;
  ASSERT_TRUE(client.load_model("b", path, &load_reply).empty());
  EXPECT_TRUE(load_reply.ok) << load_reply.detail;
  EXPECT_FALSE(load_reply.swapped);
  ASSERT_TRUE(client.load_model("b", path, &load_reply).empty());
  EXPECT_TRUE(load_reply.ok) << load_reply.detail;
  EXPECT_TRUE(load_reply.swapped);
  std::remove(path.c_str());

  ASSERT_TRUE(client.health("", &health).empty());
  EXPECT_EQ(health.models.size(), 2u);

  // Metrics carry the serving counters per model.
  MetricsReply metrics;
  ASSERT_TRUE(client.metrics("a", &metrics).empty());
  ASSERT_EQ(metrics.models.size(), 1u);
  EXPECT_EQ(metrics.models[0].completed, 1);
  EXPECT_DOUBLE_EQ(metrics.models[0].expected_attempts_per_image, 1.0);

  // Unload over the wire.
  UnloadModelReply unload_reply;
  ASSERT_TRUE(client.unload_model("b", &unload_reply).empty());
  EXPECT_TRUE(unload_reply.ok) << unload_reply.detail;
  ASSERT_TRUE(client.unload_model("b", &unload_reply).empty());
  EXPECT_FALSE(unload_reply.ok);

  // Shutdown frame: acknowledged, then the owner observes the request.
  ShutdownReply shutdown_reply;
  ASSERT_TRUE(client.shutdown_server(true, &shutdown_reply).empty());
  bool drain = false;
  live.server.wait_until_shutdown(&drain);
  EXPECT_TRUE(drain);
  EXPECT_GE(live.server.connections_accepted(), 1);
}

TEST(ServeEndToEnd, MalformedFramesAnswerOneErrorAndClose) {
  LiveServer live;
  ASSERT_TRUE(live.registry.load_network("a", make_qnet(11)).empty());

  // Bad magic: one Error frame naming the problem, then the connection is
  // closed by the server.
  {
    std::string error;
    Socket socket = Socket::connect_loopback(live.server.port(), &error);
    ASSERT_TRUE(error.empty()) << error;
    std::uint8_t header[kHeaderBytes];
    encode_header(FrameType::kHealth, 0, header);
    header[0] ^= 0xFF;
    ASSERT_TRUE(socket.write_all(header, kHeaderBytes).empty());
    FrameType type = FrameType::kInfer;
    std::vector<std::uint8_t> payload;
    ASSERT_TRUE(socket.recv_frame(&type, &payload).empty());
    EXPECT_EQ(type, FrameType::kError);
    ErrorReply error_reply;
    ASSERT_TRUE(decode(payload, &error_reply).empty());
    EXPECT_NE(error_reply.message.find("magic"), std::string::npos)
        << error_reply.message;
    bool clean_eof = false;
    EXPECT_FALSE(socket.recv_frame(&type, &payload, &clean_eof).empty());
    EXPECT_TRUE(clean_eof) << "the server closes after a protocol error";
  }

  // Truncated length prefix: a client that dies mid-header must not wedge
  // or crash the server.
  {
    std::string error;
    Socket socket = Socket::connect_loopback(live.server.port(), &error);
    ASSERT_TRUE(error.empty()) << error;
    std::uint8_t header[kHeaderBytes];
    encode_header(FrameType::kHealth, 0, header);
    ASSERT_TRUE(socket.write_all(header, 5).empty());
    socket.close();
  }

  // A header promising more payload than ever arrives: the server's read
  // sees EOF mid-frame and closes without replying.
  {
    std::string error;
    Socket socket = Socket::connect_loopback(live.server.port(), &error);
    ASSERT_TRUE(error.empty()) << error;
    std::uint8_t header[kHeaderBytes];
    encode_header(FrameType::kHealth, 64, header);
    ASSERT_TRUE(socket.write_all(header, kHeaderBytes).empty());
    ASSERT_TRUE(socket.write_all("short", 5).empty());
    socket.close();
  }

  // Garbage payload on a known frame type: Error frame, then close.
  {
    Client client;
    ASSERT_TRUE(client.connect_loopback(live.server.port()).empty());
    std::vector<std::uint8_t> reply_payload;
    const std::string error =
        client.round_trip(FrameType::kInfer, {0xDE, 0xAD, 0xBE, 0xEF},
                          FrameType::kInferReply, &reply_payload);
    EXPECT_NE(error.find("server error"), std::string::npos) << error;
  }

  // A reply-typed frame from a client is a protocol violation.
  {
    Client client;
    ASSERT_TRUE(client.connect_loopback(live.server.port()).empty());
    std::vector<std::uint8_t> reply_payload;
    const std::string error =
        client.round_trip(FrameType::kInferReply, encode(InferReply{}),
                          FrameType::kInferReply, &reply_payload);
    EXPECT_NE(error.find("server error"), std::string::npos) << error;
    EXPECT_NE(error.find("infer_reply"), std::string::npos) << error;
  }

  // After all that abuse the server still serves new connections.
  Client client;
  ASSERT_TRUE(client.connect_loopback(live.server.port()).empty());
  HealthReply health;
  ASSERT_TRUE(client.health("", &health).empty());
  EXPECT_EQ(health.models.size(), 1u);
}

TEST(ServeEndToEnd, ConcurrentClientsShareTheFleet) {
  // Several connections pushing inference at once: every reply is kOk with
  // the model's bit-identical logits — the wire layer adds no nondeterminism
  // on top of the pool's equivalence guarantee.
  LiveServer live;
  const quant::QuantizedNetwork qnet = make_qnet(11);
  const TensorI codes = encode_image(qnet, 5);
  const std::vector<std::int64_t> logits =
      reference_logits(qnet, live.options, codes);
  ASSERT_TRUE(live.registry.load_network("a", qnet).empty());

  constexpr int kClients = 4;
  constexpr int kPerClient = 3;
  std::vector<std::future<std::string>> sessions;
  for (int c = 0; c < kClients; ++c)
    sessions.push_back(std::async(std::launch::async, [&]() -> std::string {
      Client client;
      std::string error = client.connect_loopback(live.server.port());
      if (!error.empty()) return error;
      for (int i = 0; i < kPerClient; ++i) {
        InferRequest request;
        request.model_id = "a";
        request.codes = codes;
        InferReply reply;
        error = client.infer(request, &reply);
        if (!error.empty()) return error;
        if (reply.status != RequestStatus::kOk) return reply.error;
        if (reply.logits != logits) return "logits diverged";
      }
      return {};
    }));
  for (auto& session : sessions) EXPECT_EQ(session.get(), std::string());

  const auto snapshot = live.registry.snapshot("a");
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].stats.completed, kClients * kPerClient);
}

}  // namespace
}  // namespace rsnn::serve
