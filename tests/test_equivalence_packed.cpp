// Equivalence of the event-driven, bit-packed cycle-accurate simulator with
// the seed byte-per-bit implementation on LeNet-5, and cross-engine
// equivalence of all four execution engines over the same LayerProgram:
// logits, total cycles, adder-op counts and memory traffic are architectural
// quantities and must be exactly identical everywhere.
//
// Oracles used (all independent of the rewritten hot loops):
//   * logits        — QuantizedNetwork::forward (invariant 1/2)
//   * total_cycles  — the analytic latency model (invariant 4)
//   * adder ops     — RadixSnn's synaptic-op count (same event definition:
//                     one fired addition per (spike, consuming adder))
//   * traffic       — closed-form expressions transcribed from the seed
//                     unit simulators' accounting
#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "compiler/compile.hpp"
#include "encoding/radix.hpp"
#include "engine/engine.hpp"
#include "engine/stream.hpp"
#include "hw/accelerator.hpp"
#include "nn/zoo.hpp"
#include "quant/quantize.hpp"
#include "snn/radix_snn.hpp"
#include "test_helpers.hpp"

namespace rsnn::hw {
namespace {

/// Per-layer traffic of the seed cycle-accurate implementation, in closed
/// form (transcribed from the seed's per-element accounting), derived from
/// the lowered program's typed ops.
MemTraffic seed_traffic(const ir::LayerProgram& program) {
  MemTraffic total;
  const std::int64_t T = program.time_bits();
  const AcceleratorConfig& cfg = program.config();
  for (const ir::LayerOp& op : program.ops()) {
    switch (op.kind) {
      case ir::OpKind::kConv: {
        const auto& conv = *op.conv;
        const std::int64_t ih = op.in_shape.dim(1), iw = op.in_shape.dim(2);
        const std::int64_t k = conv.kernel;
        const std::int64_t oh = op.out_shape.dim(1), ow = op.out_shape.dim(2);
        const std::int64_t X = cfg.conv.array_columns;
        const std::int64_t share =
            std::clamp<std::int64_t>(X / ow, 1, conv.out_channels);
        const std::int64_t tiles = ow > X ? ceil_div(ow, X) : 1;
        const std::int64_t slices = ceil_div(conv.out_channels, share);
        // One full input read per (slice, time step, input channel, tile).
        total.act_read_bits += slices * T * conv.in_channels * tiles * ih * iw;
        total.act_write_bits += conv.out_channels * oh * ow * T;
        total.weight_read_bits += T * conv.in_channels * tiles * k * k *
                                  conv.out_channels * program.weight_bits();
        break;
      }
      case ir::OpKind::kPool: {
        const std::int64_t channels = op.in_shape.dim(0);
        const std::int64_t ih = op.in_shape.dim(1), iw = op.in_shape.dim(2);
        const std::int64_t oh = op.out_shape.dim(1), ow = op.out_shape.dim(2);
        const std::int64_t X = cfg.pool.array_columns;
        const std::int64_t tiles = ow > X ? ceil_div(ow, X) : 1;
        // Every channel reads its full input once per (time step, tile).
        total.act_read_bits += channels * T * tiles * ih * iw;
        total.act_write_bits += channels * oh * ow * T;
        break;
      }
      case ir::OpKind::kLinear: {
        const auto& fc = *op.linear;
        total.act_read_bits += T * fc.in_features;
        total.act_write_bits += fc.out_features * T;
        total.weight_read_bits +=
            T * fc.in_features * fc.out_features * program.weight_bits();
        break;
      }
      case ir::OpKind::kFlatten:
        break;
    }
  }
  return total;
}

TEST(PackedEquivalence, LeNetCycleAccurateMatchesSeedSemantics) {
  Rng rng(2022);
  nn::Network lenet = nn::make_lenet5();
  lenet.init_params(rng);
  const quant::QuantizedNetwork qnet =
      quant::quantize(lenet, quant::QuantizeConfig{3, 4});
  Accelerator accel(lenet_reference_config(), qnet);
  const snn::RadixSnn snn(qnet);

  for (int trial = 0; trial < 2; ++trial) {
    const TensorF image =
        rsnn::testing::random_image(Shape{1, 32, 32}, rng);
    const TensorI codes = quant::encode_activations(image, 4);
    const AccelRunResult run = accel.run_codes(codes, SimMode::kCycleAccurate);

    // Logits: bit-identical to the integer reference model.
    EXPECT_EQ(run.logits, qnet.forward(codes)) << "trial " << trial;

    // Cycles: identical to the analytic model (seed invariant 4).
    EXPECT_EQ(run.total_cycles, accel.predict_total_cycles());

    // Adder ops: one fired addition per (spike, consuming adder) — the same
    // event count the functional radix-SNN reports as synaptic operations.
    const auto train = encoding::radix_encode_codes(codes, 4);
    const snn::RadixSnnResult fn = snn.run(train, false);
    EXPECT_EQ(run.total_adder_ops, fn.total_synaptic_ops) << "trial " << trial;
    EXPECT_EQ(run.logits, fn.logits);

    // Traffic: exactly the seed implementation's accounting.
    const MemTraffic expected = seed_traffic(accel.program());
    EXPECT_EQ(run.traffic_total.act_read_bits, expected.act_read_bits);
    EXPECT_EQ(run.traffic_total.act_write_bits, expected.act_write_bits);
    EXPECT_EQ(run.traffic_total.weight_read_bits, expected.weight_read_bits);
  }
}

// ------------------------------------------------- cross-engine equivalence

/// All four engines walk the same LayerProgram and must agree bit-for-bit:
/// logits, total cycles, adder ops and memory traffic on LeNet-5.
class EngineEquivalence
    : public ::testing::TestWithParam<engine::EngineKind> {};

TEST_P(EngineEquivalence, LeNetBitIdenticalToCycleAccurate) {
  Rng rng(2023);
  nn::Network lenet = nn::make_lenet5();
  lenet.init_params(rng);
  const quant::QuantizedNetwork qnet =
      quant::quantize(lenet, quant::QuantizeConfig{3, 4});
  const ir::LayerProgram program =
      ir::lower(qnet, lenet_reference_config());

  // Baseline: the bit-true stepped dataflow.
  const auto baseline_engine =
      engine::make_engine(engine::EngineKind::kCycleAccurate, program);
  const auto under_test = engine::make_engine(GetParam(), program);

  for (int trial = 0; trial < 2; ++trial) {
    const TensorF image =
        rsnn::testing::random_image(Shape{1, 32, 32}, rng);
    const TensorI codes = quant::encode_activations(image, 4);
    const AccelRunResult baseline = baseline_engine->run_codes(codes);
    const AccelRunResult run = under_test->run_codes(codes);

    EXPECT_EQ(run.logits, baseline.logits) << "trial " << trial;
    EXPECT_EQ(run.predicted_class, baseline.predicted_class);
    EXPECT_EQ(run.total_cycles, baseline.total_cycles);
    EXPECT_EQ(run.total_adder_ops, baseline.total_adder_ops);
    EXPECT_EQ(run.traffic_total.act_read_bits,
              baseline.traffic_total.act_read_bits);
    EXPECT_EQ(run.traffic_total.act_write_bits,
              baseline.traffic_total.act_write_bits);
    EXPECT_EQ(run.traffic_total.weight_read_bits,
              baseline.traffic_total.weight_read_bits);
    EXPECT_EQ(run.dram_bits, baseline.dram_bits);

    // Per-layer cycle totals agree as well (invariant 4 per op).
    ASSERT_EQ(run.layers.size(), baseline.layers.size());
    for (std::size_t li = 0; li < run.layers.size(); ++li) {
      EXPECT_EQ(run.layers[li].cycles, baseline.layers[li].cycles)
          << "layer " << li;
      EXPECT_EQ(run.layers[li].adder_ops, baseline.layers[li].adder_ops)
          << "layer " << li;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, EngineEquivalence,
    ::testing::Values(engine::EngineKind::kCycleAccurate,
                      engine::EngineKind::kStepped,
                      engine::EngineKind::kAnalytic,
                      engine::EngineKind::kBehavioral,
                      engine::EngineKind::kReference),
    [](const ::testing::TestParamInfo<engine::EngineKind>& info) {
      return std::string(engine::engine_name(info.param));
    });

// ------------------------------------------------------ batch and streaming

TEST(PackedEquivalence, BatchMatchesSequentialRuns) {
  Rng rng(7);
  nn::Network net = rsnn::testing::small_random_net(rng);
  const quant::QuantizedNetwork qnet =
      quant::quantize(net, quant::QuantizeConfig{3, 4});
  AcceleratorConfig cfg;
  cfg.num_conv_units = 2;
  cfg.conv = ConvUnitGeometry{12, 5, 24};
  cfg.pool = PoolUnitGeometry{8, 2, 16};
  cfg.linear = LinearUnitGeometry{4, 24};
  Accelerator accel(cfg, qnet);

  std::vector<TensorF> images;
  for (int i = 0; i < 6; ++i)
    images.push_back(rsnn::testing::random_image(Shape{1, 10, 10}, rng));

  const auto batch = accel.run_batch(images, SimMode::kCycleAccurate,
                                     /*num_threads=*/3);
  ASSERT_EQ(batch.size(), images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    const AccelRunResult ref = accel.run_image(images[i]);
    EXPECT_EQ(batch[i].logits, ref.logits) << "image " << i;
    EXPECT_EQ(batch[i].total_cycles, ref.total_cycles);
    EXPECT_EQ(batch[i].total_adder_ops, ref.total_adder_ops);
    EXPECT_EQ(batch[i].traffic_total.act_read_bits,
              ref.traffic_total.act_read_bits);
  }

  // Single-threaded and analytic-mode batches take the same paths.
  const auto serial = accel.run_batch(images, SimMode::kCycleAccurate, 1);
  for (std::size_t i = 0; i < images.size(); ++i)
    EXPECT_EQ(serial[i].logits, batch[i].logits);
}

TEST(PackedEquivalence, StreamingMatchesSequentialRuns) {
  // The persistent worker pool (pre-allocated per-worker state, reused
  // across inferences) must be bit-identical to one-shot execution, and a
  // second batch through the same warm pool must agree with the first.
  Rng rng(11);
  nn::Network net = rsnn::testing::small_random_net(rng);
  const quant::QuantizedNetwork qnet =
      quant::quantize(net, quant::QuantizeConfig{3, 4});
  AcceleratorConfig cfg;
  cfg.num_conv_units = 2;
  cfg.conv = ConvUnitGeometry{12, 5, 24};
  cfg.pool = PoolUnitGeometry{8, 2, 16};
  cfg.linear = LinearUnitGeometry{4, 24};
  const ir::LayerProgram program = ir::lower(qnet, cfg);
  Accelerator accel(program);

  std::vector<TensorI> codes;
  for (int i = 0; i < 8; ++i)
    codes.push_back(quant::encode_activations(
        rsnn::testing::random_image(Shape{1, 10, 10}, rng), 4));

  engine::StreamingExecutor stream(program, engine::EngineKind::kCycleAccurate,
                                   /*num_workers=*/2);
  const auto first = stream.run_stream(codes);
  const auto second = stream.run_stream(codes);  // warm pool, reused state
  ASSERT_EQ(first.size(), codes.size());
  EXPECT_EQ(stream.last_stats().images, static_cast<std::int64_t>(codes.size()));
  EXPECT_GT(stream.last_stats().images_per_sec, 0.0);

  for (std::size_t i = 0; i < codes.size(); ++i) {
    const AccelRunResult ref = accel.run_codes(codes[i]);
    EXPECT_EQ(first[i].logits, ref.logits) << "image " << i;
    EXPECT_EQ(first[i].total_cycles, ref.total_cycles);
    EXPECT_EQ(first[i].total_adder_ops, ref.total_adder_ops);
    EXPECT_EQ(second[i].logits, ref.logits) << "image " << i;
    EXPECT_EQ(second[i].total_cycles, ref.total_cycles);
    EXPECT_EQ(second[i].total_adder_ops, ref.total_adder_ops);
    EXPECT_EQ(second[i].traffic_total.act_read_bits,
              ref.traffic_total.act_read_bits);
  }
}

TEST(PackedEquivalence, StreamingEmptyBatchResetsStats) {
  // An empty batch must return a zeroed stats record, not the previous
  // batch's throughput (regression: early return before the stats reset).
  Rng rng(13);
  nn::Network net = rsnn::testing::small_random_net(rng);
  const quant::QuantizedNetwork qnet =
      quant::quantize(net, quant::QuantizeConfig{3, 4});
  AcceleratorConfig cfg;
  cfg.num_conv_units = 1;
  cfg.conv = ConvUnitGeometry{12, 5, 24};
  cfg.pool = PoolUnitGeometry{8, 2, 16};
  cfg.linear = LinearUnitGeometry{4, 24};
  const ir::LayerProgram program = ir::lower(qnet, cfg);

  engine::StreamingExecutor stream(program, engine::EngineKind::kReference,
                                   /*num_workers=*/2);
  std::vector<TensorI> codes{quant::encode_activations(
      rsnn::testing::random_image(Shape{1, 10, 10}, rng), 4)};
  stream.run_stream(codes);
  ASSERT_EQ(stream.last_stats().images, 1);
  ASSERT_GT(stream.last_stats().images_per_sec, 0.0);

  const auto empty = stream.run_stream({});
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(stream.last_stats().images, 0);
  EXPECT_EQ(stream.last_stats().wall_ms, 0.0);
  EXPECT_EQ(stream.last_stats().images_per_sec, 0.0);
  EXPECT_EQ(stream.last_stats().ns_per_inference, 0.0);
  EXPECT_EQ(stream.last_stats().workers, 2);
}

// --------------------------------------------- engine parsing and sweeps

TEST(EngineParsing, RoundTripsCanonicalNamesAndShorthand) {
  for (const engine::EngineKind kind : engine::all_engines())
    EXPECT_EQ(engine::parse_engine(engine::engine_name(kind)), kind);
  EXPECT_EQ(engine::parse_engine("cycle"),
            engine::EngineKind::kCycleAccurate);
}

TEST(EngineParsing, RejectsUnknownNames) {
  EXPECT_THROW(engine::parse_engine(""), ContractViolation);
  EXPECT_THROW(engine::parse_engine("Cycle_Accurate"), ContractViolation);
  EXPECT_THROW(engine::parse_engine("analytical"), ContractViolation);
  EXPECT_THROW(engine::parse_engine("gpu"), ContractViolation);
  try {
    engine::parse_engine("warp");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    // The message names the offender and the accepted engines.
    EXPECT_NE(std::string(e.what()).find("warp"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("cycle_accurate"),
              std::string::npos);
  }
}

/// Cross-engine equivalence beyond LeNet: every engine must agree on the
/// tiny test net and on VGG-11 (the DRAM-streaming Table III design).
void expect_all_engines_agree(const quant::QuantizedNetwork& qnet,
                              const ir::LayerProgram& program,
                              const TensorI& codes) {
  const auto baseline =
      engine::make_engine(engine::EngineKind::kCycleAccurate, program);
  const AccelRunResult ref = baseline->run_codes(codes);
  EXPECT_EQ(ref.logits, qnet.forward(codes));

  for (const engine::EngineKind kind : engine::all_engines()) {
    if (kind == engine::EngineKind::kCycleAccurate) continue;
    const auto under_test = engine::make_engine(kind, program);
    const AccelRunResult run = under_test->run_codes(codes);
    SCOPED_TRACE(engine::engine_name(kind));
    EXPECT_EQ(run.logits, ref.logits);
    EXPECT_EQ(run.total_cycles, ref.total_cycles);
    EXPECT_EQ(run.total_adder_ops, ref.total_adder_ops);
    EXPECT_EQ(run.dram_bits, ref.dram_bits);
    EXPECT_EQ(run.traffic_total.act_read_bits,
              ref.traffic_total.act_read_bits);
    EXPECT_EQ(run.traffic_total.act_write_bits,
              ref.traffic_total.act_write_bits);
    EXPECT_EQ(run.traffic_total.weight_read_bits,
              ref.traffic_total.weight_read_bits);
  }
}

TEST(EngineSweep, TinyModelAllEnginesAgree) {
  Rng rng(31);
  nn::Network tiny = nn::make_model("tiny");
  tiny.init_params(rng);
  for (nn::Param* p : tiny.params())
    for (std::int64_t i = 0; i < p->value.numel(); ++i)
      p->value.at_flat(i) *= 0.5f;
  const quant::QuantizedNetwork qnet =
      quant::quantize(tiny, quant::QuantizeConfig{3, 4});
  const compiler::CompiledDesign design =
      compiler::compile(qnet, compiler::CompileOptions{});

  for (int trial = 0; trial < 2; ++trial) {
    const TensorI codes = quant::encode_activations(
        rsnn::testing::random_image(qnet.input_shape, rng), qnet.time_bits);
    expect_all_engines_agree(qnet, design.program, codes);
  }
}

TEST(EngineSweep, Vgg11AllEnginesAgree) {
  Rng rng(37);
  nn::Network vgg = nn::make_vgg11();
  vgg.init_params(rng);
  const quant::QuantizedNetwork qnet =
      quant::quantize(vgg, quant::QuantizeConfig{3, 3});
  const ir::LayerProgram program = ir::lower(qnet, vgg11_table3_config());
  EXPECT_TRUE(program.uses_dram());  // the Table III VGG row streams weights

  const TensorI codes = quant::encode_activations(
      rsnn::testing::random_image(qnet.input_shape, rng), qnet.time_bits);
  expect_all_engines_agree(qnet, program, codes);
}

}  // namespace
}  // namespace rsnn::hw
