// Equivalence of the event-driven, bit-packed cycle-accurate simulator with
// the seed byte-per-bit implementation on LeNet-5: logits, total cycles,
// adder-op counts and memory traffic are architectural quantities and must be
// exactly what the original dense loops produced.
//
// Oracles used (all independent of the rewritten hot loops):
//   * logits        — QuantizedNetwork::forward (invariant 1/2)
//   * total_cycles  — the analytic latency model (invariant 4)
//   * adder ops     — RadixSnn's synaptic-op count (same event definition:
//                     one fired addition per (spike, consuming adder))
//   * traffic       — closed-form expressions transcribed from the seed
//                     unit simulators' accounting
#include <gtest/gtest.h>

#include <variant>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "encoding/radix.hpp"
#include "hw/accelerator.hpp"
#include "nn/zoo.hpp"
#include "quant/quantize.hpp"
#include "snn/radix_snn.hpp"
#include "test_helpers.hpp"

namespace rsnn::hw {
namespace {

using quant::QConv2d;
using quant::QLinear;
using quant::QPool2d;

/// Per-layer traffic of the seed cycle-accurate implementation, in closed
/// form (transcribed from the seed's per-element accounting).
MemTraffic seed_traffic(const quant::QuantizedNetwork& qnet,
                        const AcceleratorConfig& cfg) {
  MemTraffic total;
  const std::int64_t T = qnet.time_bits;
  Shape shape = qnet.input_shape;
  const auto shapes = qnet.layer_output_shapes();
  for (std::size_t li = 0; li < qnet.layers.size(); ++li) {
    const auto& layer = qnet.layers[li];
    if (const auto* conv = std::get_if<QConv2d>(&layer)) {
      const std::int64_t ih = shape.dim(1), iw = shape.dim(2);
      const std::int64_t k = conv->kernel;
      const std::int64_t oh = shapes[li].dim(1), ow = shapes[li].dim(2);
      const std::int64_t X = cfg.conv.array_columns;
      const std::int64_t share =
          std::clamp<std::int64_t>(X / ow, 1, conv->out_channels);
      const std::int64_t tiles = ow > X ? ceil_div(ow, X) : 1;
      const std::int64_t slices = ceil_div(conv->out_channels, share);
      // One full input read per (slice, time step, input channel, tile).
      total.act_read_bits += slices * T * conv->in_channels * tiles * ih * iw;
      total.act_write_bits += conv->out_channels * oh * ow * T;
      total.weight_read_bits += T * conv->in_channels * tiles * k * k *
                                conv->out_channels * qnet.weight_bits;
    } else if (const auto* pool = std::get_if<QPool2d>(&layer)) {
      const std::int64_t channels = shape.dim(0);
      const std::int64_t ih = shape.dim(1), iw = shape.dim(2);
      const std::int64_t oh = shapes[li].dim(1), ow = shapes[li].dim(2);
      const std::int64_t X = cfg.pool.array_columns;
      const std::int64_t tiles = ow > X ? ceil_div(ow, X) : 1;
      // Every channel reads its full input once per (time step, tile).
      total.act_read_bits += channels * T * tiles * ih * iw;
      total.act_write_bits += channels * oh * ow * T;
      (void)pool;
    } else if (const auto* fc = std::get_if<QLinear>(&layer)) {
      total.act_read_bits += T * fc->in_features;
      total.act_write_bits += fc->out_features * T;
      total.weight_read_bits +=
          T * fc->in_features * fc->out_features * qnet.weight_bits;
    }
    shape = shapes[li];
  }
  return total;
}

TEST(PackedEquivalence, LeNetCycleAccurateMatchesSeedSemantics) {
  Rng rng(2022);
  nn::Network lenet = nn::make_lenet5();
  lenet.init_params(rng);
  const quant::QuantizedNetwork qnet =
      quant::quantize(lenet, quant::QuantizeConfig{3, 4});
  Accelerator accel(lenet_reference_config(), qnet);
  const snn::RadixSnn snn(qnet);

  for (int trial = 0; trial < 2; ++trial) {
    const TensorF image =
        rsnn::testing::random_image(Shape{1, 32, 32}, rng);
    const TensorI codes = quant::encode_activations(image, 4);
    const AccelRunResult run = accel.run_codes(codes, SimMode::kCycleAccurate);

    // Logits: bit-identical to the integer reference model.
    EXPECT_EQ(run.logits, qnet.forward(codes)) << "trial " << trial;

    // Cycles: identical to the analytic model (seed invariant 4).
    EXPECT_EQ(run.total_cycles, accel.predict_total_cycles());

    // Adder ops: one fired addition per (spike, consuming adder) — the same
    // event count the functional radix-SNN reports as synaptic operations.
    const auto train = encoding::radix_encode_codes(codes, 4);
    const snn::RadixSnnResult fn = snn.run(train, false);
    EXPECT_EQ(run.total_adder_ops, fn.total_synaptic_ops) << "trial " << trial;
    EXPECT_EQ(run.logits, fn.logits);

    // Traffic: exactly the seed implementation's accounting.
    const MemTraffic expected = seed_traffic(qnet, accel.config());
    EXPECT_EQ(run.traffic_total.act_read_bits, expected.act_read_bits);
    EXPECT_EQ(run.traffic_total.act_write_bits, expected.act_write_bits);
    EXPECT_EQ(run.traffic_total.weight_read_bits, expected.weight_read_bits);
  }
}

TEST(PackedEquivalence, BatchMatchesSequentialRuns) {
  Rng rng(7);
  nn::Network net = rsnn::testing::small_random_net(rng);
  const quant::QuantizedNetwork qnet =
      quant::quantize(net, quant::QuantizeConfig{3, 4});
  AcceleratorConfig cfg;
  cfg.num_conv_units = 2;
  cfg.conv = ConvUnitGeometry{12, 5, 24};
  cfg.pool = PoolUnitGeometry{8, 2, 16};
  cfg.linear = LinearUnitGeometry{4, 24};
  Accelerator accel(cfg, qnet);

  std::vector<TensorF> images;
  for (int i = 0; i < 6; ++i)
    images.push_back(rsnn::testing::random_image(Shape{1, 10, 10}, rng));

  const auto batch = accel.run_batch(images, SimMode::kCycleAccurate,
                                     /*num_threads=*/3);
  ASSERT_EQ(batch.size(), images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    const AccelRunResult ref = accel.run_image(images[i]);
    EXPECT_EQ(batch[i].logits, ref.logits) << "image " << i;
    EXPECT_EQ(batch[i].total_cycles, ref.total_cycles);
    EXPECT_EQ(batch[i].total_adder_ops, ref.total_adder_ops);
    EXPECT_EQ(batch[i].traffic_total.act_read_bits,
              ref.traffic_total.act_read_bits);
  }

  // Single-threaded and analytic-mode batches take the same paths.
  const auto serial = accel.run_batch(images, SimMode::kCycleAccurate, 1);
  for (std::size_t i = 0; i < images.size(); ++i)
    EXPECT_EQ(serial[i].logits, batch[i].logits);
}

}  // namespace
}  // namespace rsnn::hw
