// Per-device re-lowering: segment-scoped compilation must keep logits
// bit-identical to monolithic execution while letting per-stage placement,
// latency and resources improve (a pipeline stage whose parameters fit its
// own BRAM budget stops streaming from DRAM). Also covers the partitioner
// cost models (communication-aware balance_latency, resource-model
// fit_resources with smallest-feasible-device-count errors) and the CLI
// validation helpers.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "compiler/partition.hpp"
#include "engine/engine.hpp"
#include "engine/pipeline.hpp"
#include "hw/accelerator.hpp"
#include "hw/pingpong.hpp"
#include "hw/resource_model.hpp"
#include "nn/zoo.hpp"
#include "quant/quantize.hpp"
#include "test_helpers.hpp"

namespace rsnn::engine {
namespace {

/// LeNet-5 at T=4. `weight_bram_bits` defaults to a budget that the whole
/// model exceeds but an early-conv segment fits, so monolithic lowering
/// streams every parameter layer from DRAM while re-lowered segments can be
/// promoted on chip.
struct TightLeNetFixture {
  static constexpr std::int64_t kTightBudgetBits = 20000;

  quant::QuantizedNetwork qnet;
  ir::LayerProgram program;

  explicit TightLeNetFixture(std::int64_t weight_bram_bits = kTightBudgetBits) {
    Rng rng(2024);
    nn::Network lenet = nn::make_lenet5();
    lenet.init_params(rng);
    qnet = quant::quantize(lenet, quant::QuantizeConfig{3, 4});
    hw::AcceleratorConfig cfg = hw::lenet_reference_config();
    cfg.memory.weight_bram_bits = weight_bram_bits;
    program = ir::lower(qnet, cfg);
  }
};

std::vector<TensorI> lenet_batch(int count, int T) {
  Rng rng(77);
  std::vector<TensorI> codes;
  for (int i = 0; i < count; ++i)
    codes.push_back(quant::encode_activations(
        rsnn::testing::random_image(Shape{1, 32, 32}, rng), T));
  return codes;
}

std::vector<std::size_t> interior_cuts(
    const std::vector<ir::ProgramSegment>& segments) {
  std::vector<std::size_t> cuts;
  for (std::size_t s = 1; s < segments.size(); ++s)
    cuts.push_back(segments[s].begin);
  return cuts;
}

// ------------------------------------------- segment-scoped lowering (ir)

TEST(SegmentLowering, RangeLowerSlicesOpsAndKeepsNetworkIndices) {
  const TightLeNetFixture fx;
  const std::size_t n = fx.program.size();
  ASSERT_EQ(n, 8u);  // conv pool conv pool conv flatten fc fc
  EXPECT_TRUE(fx.program.whole_network());
  EXPECT_FALSE(fx.program.entry_buffer_is_1d());

  const ir::LayerProgram sub =
      ir::lower(fx.qnet, 2, 6, fx.program.config());
  ASSERT_EQ(sub.size(), 4u);
  EXPECT_FALSE(sub.whole_network());
  EXPECT_EQ(sub.network_begin(), 2u);
  EXPECT_EQ(sub.network_end(), 6u);
  for (std::size_t pos = 0; pos < sub.size(); ++pos) {
    EXPECT_EQ(sub.op(pos).layer_index, static_cast<int>(pos + 2));
    EXPECT_EQ(sub.op(pos).kind, fx.program.op(pos + 2).kind);
    EXPECT_EQ(sub.op(pos).in_shape, fx.program.op(pos + 2).in_shape);
  }

  // A range starting downstream of the flatten enters through the 1-D pair.
  const ir::LayerProgram tail =
      ir::lower(fx.qnet, 6, 8, fx.program.config());
  EXPECT_TRUE(tail.entry_buffer_is_1d());
  EXPECT_TRUE(ir::entry_is_1d(tail, 0));
  EXPECT_FALSE(ir::entry_is_1d(sub, 0));

  EXPECT_THROW(ir::lower(fx.qnet, 3, 3, fx.program.config()),
               ContractViolation);
  EXPECT_THROW(ir::lower(fx.qnet, 0, n + 1, fx.program.config()),
               ContractViolation);
}

TEST(SegmentLowering, TightBudgetPromotesSegmentToOnChip) {
  const TightLeNetFixture fx;
  // Monolithic plan: the whole model exceeds the budget, so every parameter
  // layer streams from DRAM.
  EXPECT_TRUE(fx.program.uses_dram());

  // The early-conv segment fits the same per-device budget on its own, so
  // segment-scoped lowering places it on chip and its predicted latency
  // drops (no DRAM prefetch).
  const ir::LayerProgram head = ir::relower_range(fx.program, 0, 4);
  EXPECT_FALSE(head.uses_dram());
  std::int64_t inherited_cycles = 0;
  for (std::size_t li = 0; li < 4; ++li)
    inherited_cycles += fx.program.op(li).latency.total_cycles;
  EXPECT_LT(head.predicted_total_cycles(), inherited_cycles);

  // The FC tail still exceeds the budget and keeps streaming.
  const ir::LayerProgram tail = ir::relower_range(fx.program, 5, 8);
  EXPECT_TRUE(tail.uses_dram());
}

TEST(SegmentLowering, BufferPlanIsSegmentScoped) {
  const TightLeNetFixture fx;
  const int T = fx.qnet.time_bits;

  // A post-flatten segment needs no 2-D buffer capacity beyond the clamp.
  const ir::LayerProgram tail = ir::relower_range(fx.program, 6, 8);
  EXPECT_EQ(tail.buffer_plan().buffer2d_bits_each, 1);
  EXPECT_LE(tail.buffer_plan().buffer1d_bits_each,
            fx.program.buffer_plan().buffer1d_bits_each);
  EXPECT_GE(tail.buffer_plan().buffer1d_bits_each,
            hw::activation_bits(tail.op(0).in_shape, T));

  // A head segment never needs more than the monolithic plan.
  const ir::LayerProgram head = ir::relower_range(fx.program, 0, 3);
  EXPECT_LE(head.buffer_plan().buffer2d_bits_each,
            fx.program.buffer_plan().buffer2d_bits_each);
}

TEST(SegmentLowering, RelowerSegmentsCarryProgramsAndCutBits) {
  const TightLeNetFixture fx;
  const int T = fx.qnet.time_bits;
  const auto segments =
      ir::make_segments(fx.program, {4, 6}, ir::SegmentLowering::kRelower);
  ASSERT_EQ(segments.size(), 3u);

  for (const ir::ProgramSegment& seg : segments) {
    ASSERT_TRUE(seg.is_relowered());
    EXPECT_EQ(seg.relowered->size(), seg.size());
    EXPECT_EQ(seg.relowered->network_begin(), seg.begin);
    EXPECT_EQ(seg.in_cut_bits, hw::activation_bits(seg.in_shape, T));
    if (seg.final_segment)
      EXPECT_EQ(seg.out_cut_bits, 0);
    else
      EXPECT_EQ(seg.out_cut_bits, hw::activation_bits(seg.out_shape, T));

    // Aggregates reflect the re-lowered annotations.
    std::int64_t cycles = 0, onchip = 0;
    for (const ir::LayerOp& op : seg.relowered->ops()) {
      cycles += op.latency.total_cycles;
      if (op.placement == hw::WeightPlacement::kOnChip)
        onchip += op.param_bits;
    }
    EXPECT_EQ(seg.predicted_cycles, cycles);
    EXPECT_EQ(seg.onchip_param_bits, onchip);
  }

  // Inherited mode stays annotation-free and bit-compatible with PR 3, and
  // each resource report rejects the other partition flavour.
  const auto inherited = ir::make_segments(fx.program, {4, 6});
  EXPECT_FALSE(inherited[0].is_relowered());
  EXPECT_THROW(hw::relowered_resources(inherited), ContractViolation);
  EXPECT_THROW(hw::partition_resources(fx.program, segments),
               ContractViolation);
}

// ------------------------------------ re-lowered pipeline (all 4 engines)

class RelowerEquivalence : public ::testing::TestWithParam<EngineKind> {};

TEST_P(RelowerEquivalence, LogitsBitIdenticalWhileStageCyclesImprove) {
  const TightLeNetFixture fx;
  const auto batch = lenet_batch(3, fx.qnet.time_bits);

  const auto monolithic = make_engine(GetParam(), fx.program);
  std::vector<hw::AccelRunResult> reference;
  for (const TensorI& codes : batch)
    reference.push_back(monolithic->run_codes(codes));

  const auto segments =
      ir::make_segments(fx.program, {4}, ir::SegmentLowering::kRelower);
  // The head segment is promoted on chip under the tight budget.
  EXPECT_EQ(segments[0].onchip_param_bits, segments[0].param_bits);
  EXPECT_GT(segments[0].param_bits, 0);

  PipelineExecutor pipe(fx.program, segments, GetParam());
  EXPECT_TRUE(pipe.relowered());
  const auto results = pipe.run_pipeline(batch);
  ASSERT_EQ(results.size(), batch.size());

  for (std::size_t i = 0; i < batch.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "image " << i);
    ASSERT_EQ(results[i].layers.size(), fx.program.size());
    // Logits are bit-identical; cycles are strictly better (the promoted
    // stage dropped its DRAM prefetch).
    EXPECT_EQ(results[i].logits, reference[i].logits);
    EXPECT_EQ(results[i].predicted_class, reference[i].predicted_class);
    EXPECT_EQ(results[i].total_adder_ops, reference[i].total_adder_ops);
    EXPECT_LT(results[i].total_cycles, reference[i].total_cycles);
    EXPECT_LT(results[i].dram_bits, reference[i].dram_bits);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, RelowerEquivalence,
    ::testing::Values(EngineKind::kCycleAccurate, EngineKind::kAnalytic,
                      EngineKind::kBehavioral, EngineKind::kReference),
    [](const ::testing::TestParamInfo<EngineKind>& info) {
      return std::string(engine_name(info.param));
    });

TEST(RelowerEquivalence, AllEnginesAgreeOnRelowereredStageCycles) {
  // The four engines must agree with each other in re-lowered mode too:
  // the cycle-accurate simulator stepping the per-device placement has to
  // reproduce the re-lowered analytic totals (invariant 4, per device).
  const TightLeNetFixture fx;
  const auto batch = lenet_batch(1, fx.qnet.time_bits);
  const auto segments =
      ir::make_segments(fx.program, {2, 4, 6}, ir::SegmentLowering::kRelower);

  std::vector<hw::AccelRunResult> per_engine;
  for (const EngineKind kind : all_engines()) {
    PipelineExecutor pipe(fx.program, segments, kind);
    per_engine.push_back(pipe.run_pipeline(batch)[0]);
  }
  for (std::size_t e = 1; e < per_engine.size(); ++e) {
    SCOPED_TRACE(engine_name(all_engines()[e]));
    EXPECT_EQ(per_engine[e].logits, per_engine[0].logits);
    EXPECT_EQ(per_engine[e].total_cycles, per_engine[0].total_cycles);
    EXPECT_EQ(per_engine[e].total_adder_ops, per_engine[0].total_adder_ops);
    EXPECT_EQ(per_engine[e].dram_bits, per_engine[0].dram_bits);
    for (std::size_t li = 0; li < per_engine[e].layers.size(); ++li)
      EXPECT_EQ(per_engine[e].layers[li].cycles,
                per_engine[0].layers[li].cycles)
          << "layer " << li;
  }
}

// --------------------------------------- VGG-11 promotion (acceptance)

TEST(RelowerVgg11, StagePromotedFromDramWithLowerCycles) {
  // The paper's DRAM design: every parameter layer of the monolithic VGG-11
  // program streams. After a 4-stage partition, the early stages fit the
  // 4 MiB per-device budget and must be promoted on chip with strictly
  // lower predicted *and* cycle-accurate stage cycles.
  Rng rng(37);
  nn::Network vgg = nn::make_vgg11();
  vgg.init_params(rng);
  const quant::QuantizedNetwork qnet =
      quant::quantize(vgg, quant::QuantizeConfig{3, 3});
  const ir::LayerProgram program =
      ir::lower(qnet, hw::vgg11_table3_config());
  ASSERT_TRUE(program.uses_dram());

  // Same cuts in both modes so stages compare one to one.
  const std::vector<std::size_t> cuts =
      interior_cuts(compiler::partition_balance_latency(program, 4));
  const auto inherited = ir::make_segments(program, cuts);
  const auto relowered =
      ir::make_segments(program, cuts, ir::SegmentLowering::kRelower);
  ASSERT_EQ(inherited.size(), 4u);

  int promoted = -1;
  for (std::size_t s = 0; s < relowered.size(); ++s) {
    EXPECT_EQ(inherited[s].onchip_param_bits, 0) << "stage " << s;
    if (promoted < 0 && relowered[s].param_bits > 0 &&
        relowered[s].onchip_param_bits == relowered[s].param_bits)
      promoted = static_cast<int>(s);
  }
  ASSERT_GE(promoted, 0) << "no stage was promoted to on-chip weights";
  const std::size_t p = static_cast<std::size_t>(promoted);
  EXPECT_LT(relowered[p].predicted_cycles, inherited[p].predicted_cycles);

  // Per-stage resources: the promoted stage sheds the DRAM subsystem.
  const auto device_resources = hw::relowered_resources(relowered);
  ASSERT_EQ(device_resources.size(), relowered.size());
  EXPECT_FALSE(relowered[p].relowered->uses_dram());
  EXPECT_GE(device_resources[p].bram_bits, relowered[p].param_bits);

  // Walk the inherited cycle-accurate stages up to the promoted one to get
  // its entry codes, then race the two placements on the bit-true engine.
  const TensorI input = quant::encode_activations(
      rsnn::testing::random_image(qnet.input_shape, rng), qnet.time_bits);
  TensorI codes = input;
  for (std::size_t s = 0; s < p; ++s) {
    auto stage = make_engine(EngineKind::kCycleAccurate, program,
                             inherited[s]);
    codes = stage->run_segment(codes).boundary_codes;
  }
  auto inherited_stage =
      make_engine(EngineKind::kCycleAccurate, program, inherited[p]);
  auto relowered_stage =
      make_engine(EngineKind::kCycleAccurate, program, relowered[p]);
  const SegmentRunResult slow = inherited_stage->run_segment(codes);
  const SegmentRunResult fast = relowered_stage->run_segment(codes);

  EXPECT_LT(fast.stats.total_cycles, slow.stats.total_cycles);
  EXPECT_EQ(fast.stats.total_adder_ops, slow.stats.total_adder_ops);
  if (!relowered[p].final_segment) {
    ASSERT_EQ(fast.boundary_codes.shape(), slow.boundary_codes.shape());
    EXPECT_EQ(fast.boundary_codes.to_vector(),
              slow.boundary_codes.to_vector());
  }
  // The stepped cycle count must reproduce the re-lowered prediction
  // (invariant 4 on the per-device program).
  EXPECT_EQ(fast.stats.total_cycles, relowered[p].predicted_cycles);
  EXPECT_EQ(slow.stats.total_cycles, inherited[p].predicted_cycles);

  // End to end: the re-lowered pipeline still produces the monolithic
  // logits (analytic engine at VGG scale).
  const auto monolithic = make_engine(EngineKind::kAnalytic, program);
  const hw::AccelRunResult ref = monolithic->run_codes(input);
  PipelineExecutor pipe(program, relowered, EngineKind::kAnalytic);
  const auto results = pipe.run_pipeline({input});
  EXPECT_EQ(results[0].logits, ref.logits);
  EXPECT_LT(results[0].total_cycles, ref.total_cycles);
}

// ----------------------------------------------- partitioner cost models

TEST(PartitionCostModel, BalanceLatencyTradesComputeAgainstCutTraffic) {
  const TightLeNetFixture fx;
  compiler::PartitionOptions options;
  options.link_bits_per_cycle = 8;  // expensive links: cuts matter

  const auto segments =
      compiler::partition_balance_latency(fx.program, 2, options);
  ASSERT_EQ(segments.size(), 2u);
  ASSERT_TRUE(segments[0].is_relowered());

  // The chosen partition minimizes max(stage compute + link transfers)
  // among every 2-way cut, with stage compute costed by re-lowering.
  const auto model_cost = [&](const std::vector<ir::ProgramSegment>& segs) {
    std::int64_t worst = 0;
    for (const ir::ProgramSegment& seg : segs) {
      std::int64_t cost = seg.predicted_cycles;
      if (seg.begin > 0)
        cost += hw::inter_device_transfer_cycles(
            seg.in_cut_bits, options.link_bits_per_cycle,
            options.link_setup_cycles);
      if (!seg.final_segment)
        cost += hw::inter_device_transfer_cycles(
            seg.out_cut_bits, options.link_bits_per_cycle,
            options.link_setup_cycles);
      worst = std::max(worst, cost);
    }
    return worst;
  };

  const std::int64_t chosen = model_cost(segments);
  for (std::size_t cut = 1; cut < fx.program.size(); ++cut)
    EXPECT_LE(chosen,
              model_cost(ir::make_segments(fx.program, {cut},
                                           ir::SegmentLowering::kRelower)))
        << "cut at " << cut;

  // options.relower = false keeps the cost model but emits inherited
  // segments for the bit-identical-cycles execution path.
  compiler::PartitionOptions inherited = options;
  inherited.relower = false;
  const auto plain =
      compiler::partition_balance_latency(fx.program, 2, inherited);
  EXPECT_FALSE(plain[0].is_relowered());
  EXPECT_EQ(interior_cuts(plain), interior_cuts(segments));
}

TEST(PartitionCostModel, FitResourcesFoldsBuffersAndDramSubsystem) {
  const TightLeNetFixture fx;
  compiler::PartitionOptions options;
  const auto segments =
      compiler::partition_fit_resources(fx.program, options);
  EXPECT_GT(segments.size(), 1u);

  const hw::BufferPlan& plan = fx.program.buffer_plan();
  const std::int64_t budget =
      fx.program.config().memory.weight_bram_bits +
      2 * plan.buffer2d_bits_each + 2 * plan.buffer1d_bits_each;
  for (const ir::ProgramSegment& seg : segments) {
    ASSERT_TRUE(seg.is_relowered());
    const hw::ResourceEstimate est =
        hw::estimate_resources(*seg.relowered);
    // The full device estimate — activation ping-pong BRAM included — fits
    // the budget, and multi-op stages hold their weights on chip.
    EXPECT_LE(est.bram_bits, budget)
        << "segment [" << seg.begin << ", " << seg.end << ")";
    if (seg.size() > 1) EXPECT_FALSE(seg.relowered->uses_dram());
  }

  // A LUT cap below the DRAM subsystem makes streaming singletons — and
  // therefore any packing — infeasible; the error says so.
  compiler::PartitionOptions lut_capped = options;
  lut_capped.device_luts = 25000;  // < DRAM subsystem alone
  try {
    compiler::partition_fit_resources(fx.program, lut_capped);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("infeasible at any device count"),
              std::string::npos)
        << e.what();
  }
}

TEST(PartitionCostModel, FitResourcesReportsSmallestFeasibleDeviceCount) {
  const TightLeNetFixture fx;
  compiler::PartitionOptions options;
  const std::size_t needed =
      compiler::partition_fit_resources(fx.program, options).size();
  ASSERT_GT(needed, 1u);

  options.max_devices = static_cast<int>(needed) - 1;
  try {
    compiler::partition_fit_resources(fx.program, options);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("smallest feasible device count is " +
                        std::to_string(needed)),
              std::string::npos)
        << what;
  }

  // partition_program treats the requested stage count as the device pool.
  EXPECT_THROW(
      compiler::partition_program(fx.program,
                                  compiler::PartitionStrategy::kFitResources,
                                  static_cast<int>(needed) - 1, options),
      ContractViolation);
  options.max_devices = 0;
  const auto exact = compiler::partition_program(
      fx.program, compiler::PartitionStrategy::kFitResources,
      static_cast<int>(needed), options);
  EXPECT_EQ(exact.size(), needed);
}

// ------------------------------------------------- CLI validation errors

TEST(CliValidation, PipelineRequestErrorsAreFriendlyOneLiners) {
  const TightLeNetFixture fx;
  const std::size_t n = fx.program.size();

  EXPECT_TRUE(compiler::pipeline_request_error(fx.program, 1).empty());
  EXPECT_TRUE(
      compiler::pipeline_request_error(fx.program, static_cast<int>(n))
          .empty());

  for (const int bad : {0, -3, static_cast<int>(n) + 1, 999}) {
    const std::string msg =
        compiler::pipeline_request_error(fx.program, bad);
    ASSERT_FALSE(msg.empty()) << bad;
    EXPECT_EQ(msg.find('\n'), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(bad)), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(n)), std::string::npos) << msg;
  }
}

TEST(CliValidation, ValidatePipelineRequestCoversParseAndRangeAndStrategy) {
  const TightLeNetFixture fx;
  int stages = 0;

  EXPECT_TRUE(compiler::validate_pipeline_request(fx.program, "3", "balance",
                                                  &stages)
                  .empty());
  EXPECT_EQ(stages, 3);

  // Non-numeric stage counts get the same friendly one-liner treatment
  // instead of an uncaught std::stoi exception.
  for (const char* bad : {"two", "3x", "", "4 stages"}) {
    const std::string msg = compiler::validate_pipeline_request(
        fx.program, bad, "balance_latency", &stages);
    ASSERT_FALSE(msg.empty()) << "'" << bad << "'";
    EXPECT_NE(msg.find("invalid pipeline stage count"), std::string::npos)
        << msg;
    EXPECT_EQ(msg.find('\n'), std::string::npos) << msg;
  }

  EXPECT_NE(compiler::validate_pipeline_request(fx.program, "99",
                                                "balance_latency", &stages)
                .find("cannot pipeline into 99"),
            std::string::npos);
  EXPECT_NE(compiler::validate_pipeline_request(fx.program, "2", "bogus",
                                                &stages)
                .find("unknown partition strategy"),
            std::string::npos);

  // For fit_resources the count is the available device pool, so any
  // positive size is a valid request — even one exceeding the op count.
  EXPECT_TRUE(
      compiler::validate_pipeline_request(fx.program, "99", "fit", &stages)
          .empty());
  EXPECT_EQ(stages, 99);
  EXPECT_NE(compiler::validate_pipeline_request(fx.program, "0",
                                                "fit_resources", &stages)
                .find("positive device count"),
            std::string::npos);
}

TEST(CliValidation, PartitionParseErrorsAreFriendlyOneLiners) {
  EXPECT_TRUE(compiler::partition_parse_error("balance_latency").empty());
  EXPECT_TRUE(compiler::partition_parse_error("balance").empty());
  EXPECT_TRUE(compiler::partition_parse_error("fit_resources").empty());
  EXPECT_TRUE(compiler::partition_parse_error("fit").empty());

  for (const char* bad : {"round_robin", "", "Balance_Latency"}) {
    const std::string msg = compiler::partition_parse_error(bad);
    ASSERT_FALSE(msg.empty()) << bad;
    EXPECT_EQ(msg.find('\n'), std::string::npos) << msg;
    EXPECT_NE(msg.find("balance_latency"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fit_resources"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace rsnn::engine
