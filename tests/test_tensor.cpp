#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "tensor/tensor.hpp"

namespace rsnn {
namespace {

TEST(Shape, BasicProperties) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s[2], 4);
  EXPECT_EQ(s.to_string(), "[2, 3, 4]");
}

TEST(Shape, Strides) {
  const Shape s{2, 3, 4};
  const auto strides = s.strides();
  ASSERT_EQ(strides.size(), 3u);
  EXPECT_EQ(strides[0], 12);
  EXPECT_EQ(strides[1], 4);
  EXPECT_EQ(strides[2], 1);
}

TEST(Shape, EqualityAndEmpty) {
  EXPECT_EQ(Shape({1, 2}), Shape({1, 2}));
  EXPECT_NE(Shape({1, 2}), Shape({2, 1}));
  EXPECT_EQ(Shape{}.rank(), 0);
  EXPECT_EQ(Shape{}.numel(), 1);
}

TEST(Shape, RejectsNegativeDims) {
  EXPECT_THROW(Shape({2, -1}), ContractViolation);
  EXPECT_THROW(Shape({2, 3}).dim(5), ContractViolation);
}

TEST(Tensor, IndexingRowMajor) {
  TensorI t(Shape{2, 3});
  int v = 0;
  for (std::int64_t i = 0; i < 2; ++i)
    for (std::int64_t j = 0; j < 3; ++j) t(i, j) = v++;
  EXPECT_EQ(t.at_flat(0), 0);
  EXPECT_EQ(t.at_flat(4), 4);  // (1,1)
  EXPECT_EQ(t(1, 2), 5);
}

TEST(Tensor, BoundsChecked) {
  TensorI t(Shape{2, 2});
  EXPECT_THROW(t(2, 0), ContractViolation);
  EXPECT_THROW(t(0, -1), ContractViolation);
  EXPECT_THROW(t.at_flat(4), ContractViolation);
}

TEST(Tensor, ArityChecked) {
  TensorI t(Shape{2, 2});
  EXPECT_THROW(t(std::int64_t{1}), ContractViolation);
}

TEST(Tensor, FillAndSum) {
  TensorF t(Shape{3, 3}, 2.0f);
  EXPECT_FLOAT_EQ(t.sum(), 18.0f);
  t.fill(0.5f);
  EXPECT_FLOAT_EQ(t.sum(), 4.5f);
}

TEST(Tensor, Reshape) {
  TensorI t(Shape{2, 6});
  for (std::int64_t i = 0; i < 12; ++i) t.at_flat(i) = static_cast<int>(i);
  const TensorI r = t.reshaped(Shape{3, 4});
  EXPECT_EQ(r(2, 3), 11);
  EXPECT_THROW(t.reshaped(Shape{5, 5}), ContractViolation);
}

TEST(Tensor, Cast) {
  TensorF t(Shape{2}, 1.7f);
  const TensorI i = t.cast<std::int32_t>();
  EXPECT_EQ(i.at_flat(0), 1);
}

TEST(Tensor, MapAndZip) {
  TensorF a(Shape{3}, 2.0f), b(Shape{3}, 3.0f);
  const TensorF doubled = a.map([](float x) { return 2 * x; });
  EXPECT_FLOAT_EQ(doubled.at_flat(1), 4.0f);
  const TensorF sum = a + b;
  EXPECT_FLOAT_EQ(sum.at_flat(0), 5.0f);
  const TensorF diff = b - a;
  EXPECT_FLOAT_EQ(diff.at_flat(2), 1.0f);
}

TEST(Tensor, ZipShapeMismatchThrows) {
  TensorF a(Shape{3}), b(Shape{4});
  EXPECT_THROW(a + b, ContractViolation);
}

TEST(Tensor, MinMaxArgmax) {
  TensorF t(Shape{4});
  t.at_flat(0) = 1.0f;
  t.at_flat(1) = -2.0f;
  t.at_flat(2) = 7.0f;
  t.at_flat(3) = 3.0f;
  EXPECT_FLOAT_EQ(t.min(), -2.0f);
  EXPECT_FLOAT_EQ(t.max(), 7.0f);
  EXPECT_EQ(t.argmax(), 2);
}

TEST(Tensor, MaxAbsDiff) {
  TensorF a(Shape{2}, 1.0f), b(Shape{2}, 1.0f);
  b.at_flat(1) = 1.5f;
  EXPECT_NEAR(max_abs_diff(a, b), 0.5, 1e-7);
}

TEST(Tensor, EqualityOperator) {
  TensorI a(Shape{2}, 3), b(Shape{2}, 3);
  EXPECT_EQ(a, b);
  b.at_flat(0) = 4;
  EXPECT_NE(a, b);
}

TEST(Tensor, ConstructFromData) {
  TensorI t(Shape{2, 2}, std::vector<std::int32_t>{1, 2, 3, 4});
  EXPECT_EQ(t(1, 0), 3);
  EXPECT_THROW(TensorI(Shape{2, 2}, std::vector<std::int32_t>{1}),
               ContractViolation);
}

}  // namespace
}  // namespace rsnn
