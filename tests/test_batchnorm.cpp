// BatchNorm2d layer behaviour and the exact conversion-time folding pass.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/activation.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/network.hpp"
#include "nn/optimizer.hpp"
#include "quant/fold.hpp"
#include "quant/quantize.hpp"
#include "test_helpers.hpp"

namespace rsnn::nn {
namespace {

using rsnn::testing::random_tensor;

TEST(BatchNorm, NormalizesBatchStatistics) {
  Rng rng(1);
  BatchNorm2d bn(BatchNorm2dConfig{3});
  const TensorF input = random_tensor(Shape{4, 3, 5, 5}, rng, -2.0, 5.0);
  const TensorF out = bn.forward(input, /*training=*/true);

  // Per-channel output mean ~0, variance ~1.
  for (std::int64_t c = 0; c < 3; ++c) {
    double sum = 0.0, sum_sq = 0.0;
    std::int64_t count = 0;
    for (std::int64_t n = 0; n < 4; ++n)
      for (std::int64_t y = 0; y < 5; ++y)
        for (std::int64_t x = 0; x < 5; ++x) {
          sum += out(n, c, y, x);
          sum_sq += static_cast<double>(out(n, c, y, x)) * out(n, c, y, x);
          ++count;
        }
    const double mean = sum / count;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(sum_sq / count - mean * mean, 1.0, 1e-3);
  }
}

TEST(BatchNorm, GammaBetaApply) {
  BatchNorm2d bn(BatchNorm2dConfig{1});
  bn.gamma().value(0) = 2.0f;
  bn.beta().value(0) = 0.5f;
  Rng rng(2);
  const TensorF input = random_tensor(Shape{2, 1, 4, 4}, rng);
  const TensorF out = bn.forward(input, true);
  double sum = 0.0;
  for (std::int64_t i = 0; i < out.numel(); ++i) sum += out.at_flat(i);
  EXPECT_NEAR(sum / out.numel(), 0.5, 1e-4);  // beta shifts the mean
}

TEST(BatchNorm, InferenceUsesRunningStats) {
  BatchNorm2d bn(BatchNorm2dConfig{1, 1e-5f, 1.0f});  // momentum 1: adopt batch
  Rng rng(3);
  const TensorF input = random_tensor(Shape{8, 1, 3, 3}, rng, 2.0, 4.0);
  bn.forward(input, true);  // sets running stats to this batch's stats
  const TensorF eval_out = bn.forward(input, false);
  const TensorF train_out = bn.forward(input, true);
  EXPECT_LT(max_abs_diff(eval_out, train_out), 1e-2);
}

TEST(BatchNorm, GradientCheck) {
  Rng rng(4);
  BatchNorm2d bn(BatchNorm2dConfig{2});
  const TensorF input = random_tensor(Shape{3, 2, 4, 4}, rng, -1.0, 1.0);
  const TensorF out = bn.forward(input, true);
  const TensorF grad_input = bn.backward(out);  // loss = 0.5*sum(out^2)

  const double eps = 1e-3;
  Rng pick(5);
  for (int trial = 0; trial < 8; ++trial) {
    const std::int64_t i = static_cast<std::int64_t>(
        pick.next_below(static_cast<std::uint64_t>(input.numel())));
    TensorF plus = input, minus = input;
    plus.at_flat(i) += static_cast<float>(eps);
    minus.at_flat(i) -= static_cast<float>(eps);
    auto loss_of = [&bn](const TensorF& x) {
      BatchNorm2d copy = bn;  // stats evolve; use a copy per evaluation
      const TensorF y = copy.forward(x, true);
      double loss = 0.0;
      for (std::int64_t k = 0; k < y.numel(); ++k)
        loss += 0.5 * static_cast<double>(y.at_flat(k)) * y.at_flat(k);
      return loss;
    };
    const double numeric = (loss_of(plus) - loss_of(minus)) / (2 * eps);
    EXPECT_NEAR(grad_input.at_flat(i), numeric, 2e-2 * (1 + std::abs(numeric)));
  }
}

TEST(BatchNormFold, FoldingPreservesInference) {
  Rng rng(6);
  Network net(Shape{1, 8, 8});
  net.add<Conv2d>(Conv2dConfig{1, 4, 3});
  auto& bn = net.add<BatchNorm2d>(BatchNorm2dConfig{4});
  net.add<ClippedReLU>(ClippedReLUConfig{1.0f, 0});
  net.add<Flatten>();
  net.add<Linear>(LinearConfig{4 * 6 * 6, 3});
  net.init_params(rng);

  // Give the batch norm non-trivial learned statistics.
  for (std::int64_t c = 0; c < 4; ++c) {
    bn.gamma().value(c) = 0.5f + 0.3f * static_cast<float>(c);
    bn.beta().value(c) = 0.1f * static_cast<float>(c) - 0.15f;
  }
  TensorF mean(Shape{4}), var(Shape{4});
  for (std::int64_t c = 0; c < 4; ++c) {
    mean(c) = 0.05f * static_cast<float>(c);
    var(c) = 0.5f + 0.25f * static_cast<float>(c);
  }
  bn.set_running_stats(mean, var);

  const TensorF input = random_tensor(Shape{2, 1, 8, 8}, rng, 0.0, 1.0);
  const TensorF before = net.forward(input, false);

  EXPECT_TRUE(quant::has_unfolded_batchnorm(net));
  const int folded = quant::fold_batchnorm(net);
  EXPECT_EQ(folded, 1);
  EXPECT_FALSE(quant::has_unfolded_batchnorm(net));

  const TensorF after = net.forward(input, false);
  EXPECT_LT(max_abs_diff(before, after), 1e-4);

  // Folding twice is a no-op.
  EXPECT_EQ(quant::fold_batchnorm(net), 0);
  const TensorF again = net.forward(input, false);
  EXPECT_LT(max_abs_diff(after, again), 1e-7);
}

TEST(BatchNormFold, QuantizeRejectsUnfolded) {
  Rng rng(7);
  Network net(Shape{1, 8, 8});
  net.add<Conv2d>(Conv2dConfig{1, 2, 3});
  auto& bn = net.add<BatchNorm2d>(BatchNorm2dConfig{2});
  net.add<ClippedReLU>(ClippedReLUConfig{1.0f, 0});
  net.add<Flatten>();
  net.add<Linear>(LinearConfig{2 * 6 * 6, 3});
  net.init_params(rng);
  bn.gamma().value(0) = 1.7f;  // clearly not identity

  EXPECT_THROW(quant::quantize(net, quant::QuantizeConfig{3, 4}),
               ContractViolation);
  quant::fold_batchnorm(net);
  EXPECT_NO_THROW(quant::quantize(net, quant::QuantizeConfig{3, 4}));
}

TEST(BatchNormFold, FoldedNetworkConvertsAndStaysConsistent) {
  Rng rng(8);
  Network net(Shape{1, 8, 8});
  net.add<Conv2d>(Conv2dConfig{1, 3, 3});
  auto& bn = net.add<BatchNorm2d>(BatchNorm2dConfig{3});
  net.add<ClippedReLU>(ClippedReLUConfig{1.0f, 0});
  net.add<Flatten>();
  net.add<Linear>(LinearConfig{3 * 6 * 6, 4});
  net.init_params(rng);
  for (nn::Param* p : net.params())
    for (std::int64_t i = 0; i < p->value.numel(); ++i)
      p->value.at_flat(i) *= 0.5f;
  TensorF var(Shape{3}, 0.8f);
  bn.set_running_stats(TensorF(Shape{3}, 0.1f), var);

  quant::fold_batchnorm(net);
  const auto qnet = quant::quantize(net, quant::QuantizeConfig{8, 8});

  // High-precision conversion should track the float (folded) network.
  int agree = 0;
  for (int trial = 0; trial < 15; ++trial) {
    const TensorF image = rsnn::testing::random_image(Shape{1, 8, 8}, rng);
    std::vector<std::int64_t> batched{1, 1, 8, 8};
    const TensorF logits = net.forward(image.reshaped(Shape{batched}), false);
    if (qnet.classify(quant::encode_activations(image, 8)) ==
        static_cast<int>(logits.argmax()))
      ++agree;
  }
  EXPECT_GE(agree, 13);
}

TEST(BatchNormFold, RejectsOrphanBatchNorm) {
  Rng rng(9);
  Network net(Shape{1, 8, 8});
  net.add<BatchNorm2d>(BatchNorm2dConfig{1});
  auto* bn = dynamic_cast<BatchNorm2d*>(&net.layer(0));
  bn->gamma().value(0) = 2.0f;
  EXPECT_THROW(quant::fold_batchnorm(net), ContractViolation);
}

}  // namespace
}  // namespace rsnn::nn
