// Property sweep: randomized multi-layer architectures through the whole
// chain. For each generated network the three core invariants must hold:
//   (1) radix SNN == quantized reference (bit-exact),
//   (2) cycle-accurate accelerator == quantized reference (bit-exact),
//   (4) analytic cycle count == stepped cycle count.
// plus serialization round-trips and unit-count invariance (3).
#include <gtest/gtest.h>

#include <cstdio>

#include "hw/accelerator.hpp"
#include "nn/activation.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/pool2d.hpp"
#include "quant/qserialize.hpp"
#include "quant/quantize.hpp"
#include "encoding/radix.hpp"
#include "snn/radix_snn.hpp"
#include "test_helpers.hpp"

namespace rsnn {
namespace {

using rsnn::testing::random_image;

/// Randomized conv stack: 1-3 conv blocks (kernel 1/3/5, optional pool),
/// then flatten + linear. Returns the network; all dims stay small enough
/// for fast cycle-accurate simulation.
nn::Network random_architecture(Rng& rng, Shape* input_shape) {
  const std::int64_t cin = rng.next_int(1, 3);
  std::int64_t size = rng.next_int(10, 16);
  *input_shape = Shape{cin, size, size};

  nn::Network net(*input_shape);
  std::int64_t channels = cin;
  const int blocks = rng.next_int(1, 3);
  for (int b = 0; b < blocks; ++b) {
    const std::int64_t kernel = 1 + 2 * rng.next_int(0, 2);  // 1/3/5
    if (size < kernel + 2) break;
    const std::int64_t cout = rng.next_int(2, 5);
    const std::int64_t padding = rng.next_int(0, 1);
    // Stride 1 inside stacks keeps shapes pool-friendly.
    net.add<nn::Conv2d>(nn::Conv2dConfig{channels, cout, kernel, 1, padding});
    net.add<nn::ClippedReLU>(nn::ClippedReLUConfig{1.0f, 0});
    size = size + 2 * padding - kernel + 1;
    channels = cout;
    if (size % 2 == 0 && size >= 4 && rng.next_bool(0.7)) {
      net.add<nn::Pool2d>(nn::Pool2dConfig{2});
      size /= 2;
    }
  }
  net.add<nn::Flatten>();
  net.add<nn::Linear>(nn::LinearConfig{channels * size * size, 4});
  net.init_params(rng);
  for (nn::Param* p : net.params())
    for (std::int64_t i = 0; i < p->value.numel(); ++i)
      p->value.at_flat(i) *= 0.5f;
  return net;
}

hw::AcceleratorConfig random_config(Rng& rng) {
  hw::AcceleratorConfig cfg;
  cfg.num_conv_units = 1 << rng.next_int(0, 2);
  cfg.conv = hw::ConvUnitGeometry{static_cast<int>(rng.next_int(16, 20)), 5, 24};
  cfg.pool = hw::PoolUnitGeometry{8, 2, 16};
  cfg.linear = hw::LinearUnitGeometry{static_cast<int>(1 << rng.next_int(1, 3)), 24};
  return cfg;
}

class ArchitectureSweep : public ::testing::TestWithParam<int> {};

TEST_P(ArchitectureSweep, AllInvariantsHold) {
  Rng rng(1000 + GetParam() * 7919);
  Shape input_shape;
  nn::Network net = random_architecture(rng, &input_shape);
  const int T = rng.next_int(2, 5);
  const auto qnet = quant::quantize(net, quant::QuantizeConfig{3, T});

  const hw::AcceleratorConfig cfg = random_config(rng);
  hw::Accelerator accel(cfg, qnet);
  const snn::RadixSnn functional(qnet);

  for (int trial = 0; trial < 3; ++trial) {
    const TensorF image = random_image(input_shape, rng);
    const TensorI codes = quant::encode_activations(image, T);
    const auto reference = qnet.forward(codes);

    // (1) functional SNN bit-exact.
    EXPECT_EQ(functional.run(encoding::radix_encode_codes(codes, T)).logits,
              reference);

    // (2) cycle-accurate accelerator bit-exact.
    const auto run = accel.run_codes(codes, hw::SimMode::kCycleAccurate);
    EXPECT_EQ(run.logits, reference);

    // (4) analytic model cycle-exact.
    EXPECT_EQ(run.total_cycles, accel.predict_total_cycles());
  }

  // (3) unit-count invariance.
  hw::AcceleratorConfig more_units = cfg;
  more_units.num_conv_units = cfg.num_conv_units * 2;
  hw::Accelerator accel2(more_units, qnet);
  const TensorF image = random_image(input_shape, rng);
  const TensorI codes = quant::encode_activations(image, T);
  EXPECT_EQ(accel2.run_codes(codes).logits, accel.run_codes(codes).logits);

  // Serialization round-trip preserves inference.
  const std::string path = ::testing::TempDir() + "/sweep" +
                           std::to_string(GetParam()) + ".qsnn";
  quant::save_quantized(qnet, path);
  const auto loaded = quant::load_quantized(path);
  EXPECT_EQ(loaded.forward(codes), qnet.forward(codes));
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Random, ArchitectureSweep, ::testing::Range(0, 12));

}  // namespace
}  // namespace rsnn
