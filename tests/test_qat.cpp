// Quantization-aware training: the weight grid (nn/fake_quant) and its
// integration into Conv2d/Linear forward/backward, plus the guarantee that
// QAT training and post-training conversion share one grid definition.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/conv2d.hpp"
#include "nn/fake_quant.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"
#include "nn/zoo.hpp"
#include "quant/quantize.hpp"
#include "test_helpers.hpp"

namespace rsnn::nn {
namespace {

using rsnn::testing::random_tensor;

TEST(FakeQuant, GridMatchesQuantModule) {
  Rng rng(1);
  const TensorF w = random_tensor(Shape{64}, rng, -0.9, 0.9);
  for (const int bits : {2, 3, 4, 8}) {
    EXPECT_EQ(choose_weight_frac_bits(w, bits),
              quant::choose_frac_bits(w, bits));
    const int f = choose_weight_frac_bits(w, bits);
    EXPECT_EQ(quantize_weights_to_int(w, f, bits),
              quant::quantize_weights(w, f, bits));
  }
}

TEST(FakeQuant, ProjectionIsIdempotent) {
  Rng rng(2);
  const TensorF w = random_tensor(Shape{128}, rng, -0.7, 0.7);
  const TensorF once = fake_quantize_weights(w, 3);
  const TensorF twice = fake_quantize_weights(once, 3);
  EXPECT_EQ(once, twice);
}

TEST(FakeQuant, ProjectionErrorBounded) {
  Rng rng(3);
  const TensorF w = random_tensor(Shape{256}, rng, -0.5, 0.5);
  const int f = choose_weight_frac_bits(w, 3);
  const double step = std::ldexp(1.0, -f);
  const TensorF fq = fake_quantize_weights(w, 3);
  EXPECT_LE(max_abs_diff(w, fq), step / 2 + 1e-9);
}

TEST(FakeQuant, AllZeroWeights) {
  TensorF w(Shape{8}, 0.0f);
  EXPECT_EQ(choose_weight_frac_bits(w, 3), 0);
  const TensorF fq = fake_quantize_weights(w, 3);
  EXPECT_EQ(fq, w);
}

TEST(QatConv, ForwardUsesQuantizedWeights) {
  Conv2d conv(Conv2dConfig{1, 1, 1, 1, 0, /*bias=*/false, /*wq_bits=*/3});
  conv.weight().value(0, 0, 0, 0) = 0.30f;  // grid at f=3: step 0.125 -> 0.25
  TensorF input(Shape{1, 1, 1, 1}, 1.0f);
  const TensorF out = conv.forward(input, false);
  const float expected =
      fake_quantize_weights(conv.weight().value, 3).at_flat(0);
  EXPECT_FLOAT_EQ(out(0, 0, 0, 0), expected);
  EXPECT_NE(out(0, 0, 0, 0), 0.30f);
}

TEST(QatConv, FloatModeUntouched) {
  Conv2d conv(Conv2dConfig{1, 1, 1, 1, 0, false, 0});
  conv.weight().value(0, 0, 0, 0) = 0.30f;
  TensorF input(Shape{1, 1, 1, 1}, 1.0f);
  EXPECT_FLOAT_EQ(conv.forward(input, false)(0, 0, 0, 0), 0.30f);
}

TEST(QatLinear, ForwardUsesQuantizedWeights) {
  Linear fc(LinearConfig{1, 1, /*bias=*/false, /*wq_bits=*/3});
  fc.weight().value(0, 0) = 0.30f;
  TensorF input(Shape{1, 1}, 1.0f);
  const float expected = fake_quantize_weights(fc.weight().value, 3).at_flat(0);
  EXPECT_FLOAT_EQ(fc.forward(input, false)(0, 0), expected);
}

TEST(QatLinear, GradientFlowsToLatentWeights) {
  // The weight gradient must be nonzero even when the projected weight is
  // pinned to a grid point (straight-through estimator).
  Rng rng(4);
  Linear fc(LinearConfig{4, 2, true, 3});
  fc.init_params(rng);
  const TensorF input = random_tensor(Shape{2, 4}, rng, 0.0, 1.0);
  const TensorF out = fc.forward(input, true);
  fc.backward(TensorF(out.shape(), 1.0f));
  double grad_norm = 0.0;
  for (std::int64_t i = 0; i < fc.weight().grad.numel(); ++i)
    grad_norm += std::abs(fc.weight().grad.at_flat(i));
  EXPECT_GT(grad_norm, 0.0);
}

TEST(QatTraining, ConvergesAndConvertsLosslessly) {
  // Train a small QAT classifier to separate two patterns, then check that
  // conversion at the same bit widths does not change a single prediction.
  Rng rng(5);
  nn::Network net(Shape{1, 6, 6});
  net.add<Conv2d>(Conv2dConfig{1, 2, 3, 1, 0, true, 3});
  net.add<ClippedReLU>(ClippedReLUConfig{1.0f, 4});
  net.add<Flatten>();
  net.add<Linear>(LinearConfig{2 * 4 * 4, 2, true, 3});
  net.init_params(rng);

  std::vector<TensorF> images;
  std::vector<int> labels;
  for (int i = 0; i < 40; ++i) {
    TensorF img(Shape{1, 6, 6}, 0.05f);
    const int cls = i % 2;
    for (std::int64_t y = 0; y < 6; ++y)
      img(0, y, cls == 0 ? 1 : 4) = 0.9f;
    for (std::int64_t k = 0; k < img.numel(); ++k)
      img.at_flat(k) = std::clamp(
          img.at_flat(k) + 0.02f * static_cast<float>(rng.next_gaussian()),
          0.0f, 0.999f);
    images.push_back(img);
    labels.push_back(cls);
  }

  Adam adam(net.params(), AdamConfig{0.02f});
  for (int step = 0; step < 80; ++step) {
    std::vector<std::size_t> order(images.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    const TensorF batch = make_batch(images, order, 0, images.size());
    net.zero_grads();
    const TensorF logits = net.forward(batch, true);
    const LossResult loss = softmax_cross_entropy(logits, labels);
    net.backward(loss.grad_logits);
    adam.step();
  }
  const EvalResult eval = evaluate(net, images, labels);
  ASSERT_GT(eval.accuracy, 0.95f);

  const auto qnet = quant::quantize(net, quant::QuantizeConfig{3, 4});
  int agree = 0;
  for (std::size_t i = 0; i < images.size(); ++i) {
    std::vector<std::size_t> one{i};
    const TensorF batch = make_batch(images, one, 0, 1);
    const TensorF logits = net.forward(batch, false);
    const int ann_class = static_cast<int>(logits.argmax());
    const int snn_class =
        qnet.classify(quant::encode_activations(images[i], 4));
    if (ann_class == snn_class) ++agree;
  }
  // Activation rounding may flip borderline samples, but QAT must keep the
  // two models essentially identical.
  EXPECT_GE(agree, static_cast<int>(images.size()) - 1);
}

TEST(QatZoo, OptionsPropagate) {
  ZooOptions zoo;
  zoo.weight_qat_bits = 3;
  Network net = make_lenet5(zoo);
  auto* conv = dynamic_cast<Conv2d*>(&net.layer(0));
  ASSERT_NE(conv, nullptr);
  EXPECT_EQ(conv->config().weight_quant_bits, 3);
  auto* fc = dynamic_cast<Linear*>(&net.layer(9));  // after Flatten at [8]
  ASSERT_NE(fc, nullptr);
  EXPECT_EQ(fc->config().weight_quant_bits, 3);
}

}  // namespace
}  // namespace rsnn::nn
