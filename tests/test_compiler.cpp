#include <gtest/gtest.h>

#include "compiler/compile.hpp"
#include "hw/accelerator.hpp"
#include "nn/zoo.hpp"
#include "quant/quantize.hpp"
#include "test_helpers.hpp"

namespace rsnn::compiler {
namespace {

TEST(Compiler, LeNetGeometryMatchesPaperSetup) {
  // Paper Sec. IV-A: "(X, Y) = (30, 5) for convolution units and
  // (X, Y) = (14, 2) for pooling units, according to the network
  // configuration". Our compiler derives X from the widest output row
  // (28 for LeNet conv1, rounded up to 30 with margin 2... the paper uses
  // 30; we round to the even value >= 28).
  Rng rng(1);
  nn::Network net = nn::make_lenet5();
  net.init_params(rng);
  const auto qnet = quant::quantize(net, quant::QuantizeConfig{3, 4});
  CompileOptions options;
  options.num_conv_units = 2;
  const CompiledDesign design = compile(qnet, options);

  EXPECT_EQ(design.config.conv.kernel_rows, 5);   // Y = largest kernel
  EXPECT_GE(design.config.conv.array_columns, 28); // X >= widest row
  EXPECT_LE(design.config.conv.array_columns, 30);
  EXPECT_EQ(design.config.pool.kernel_rows, 2);
  EXPECT_EQ(design.config.pool.array_columns, 14);
}

TEST(Compiler, ScheduleCoversEveryLayer) {
  Rng rng(2);
  nn::Network net = rsnn::testing::small_random_net(rng);
  const auto qnet = quant::quantize(net, quant::QuantizeConfig{3, 4});
  const CompiledDesign design = compile(qnet, CompileOptions{});
  ASSERT_EQ(design.program.size(), qnet.layers.size());
  EXPECT_EQ(design.program.op(0).kind, ir::OpKind::kConv);
  EXPECT_EQ(design.program.op(1).kind, ir::OpKind::kPool);
  EXPECT_EQ(design.program.op(2).kind, ir::OpKind::kFlatten);
  EXPECT_EQ(design.program.op(3).kind, ir::OpKind::kLinear);
  for (const auto& op : design.program.ops())
    EXPECT_GT(op.latency.total_cycles, 0);
}

TEST(Compiler, PredictedLatencyMatchesAccelerator) {
  Rng rng(3);
  nn::Network net = rsnn::testing::small_random_net(rng);
  const auto qnet = quant::quantize(net, quant::QuantizeConfig{3, 4});
  CompileOptions options;
  options.num_conv_units = 2;
  const CompiledDesign design = compile(qnet, options);
  hw::Accelerator accel(design.config, qnet);
  EXPECT_EQ(design.predicted_total_cycles, accel.predict_total_cycles());
}

TEST(Compiler, PredictedCyclesPinnedToCycleAccurateLeNet) {
  // Invariant 4 regression (latency-prediction drift guard): the schedule's
  // per-op predicted cycles must sum to exactly what the bit-true simulator
  // counts stepping LeNet-5, for several design points.
  Rng rng(42);
  nn::Network lenet = nn::make_lenet5();
  lenet.init_params(rng);
  const auto qnet = quant::quantize(lenet, quant::QuantizeConfig{3, 4});
  const TensorF image = rsnn::testing::random_image(Shape{1, 32, 32}, rng);
  for (const int units : {1, 2, 4}) {
    CompileOptions options;
    options.num_conv_units = units;
    const CompiledDesign design = compile(qnet, options);
    std::int64_t per_op_sum = 0;
    for (const auto& op : design.program.ops())
      per_op_sum += op.latency.total_cycles;
    EXPECT_EQ(per_op_sum, design.predicted_total_cycles) << units << " units";

    hw::Accelerator accel(design.program);
    EXPECT_EQ(per_op_sum, accel.predict_total_cycles()) << units << " units";
    const auto run = accel.run_image(image, hw::SimMode::kCycleAccurate);
    EXPECT_EQ(run.total_cycles, per_op_sum) << units << " units";
  }
}

TEST(Compiler, VggGoesToDram) {
  // VGG-11's 28.5M parameters cannot fit the default BRAM budget.
  Rng rng(4);
  nn::Network net = nn::make_vgg11();
  net.init_params(rng);
  const auto qnet = quant::quantize(net, quant::QuantizeConfig{3, 6});
  CompileOptions options;
  options.num_conv_units = 8;
  options.clock_mhz = 115.0;
  options.memory.weight_bram_bits = std::int64_t{4} * 1024 * 1024 * 8;
  const CompiledDesign design = compile(qnet, options);
  EXPECT_TRUE(design.program.uses_dram());
}

TEST(Compiler, DescribeMentionsAllUnits) {
  Rng rng(5);
  nn::Network net = rsnn::testing::small_random_net(rng);
  const auto qnet = quant::quantize(net, quant::QuantizeConfig{3, 4});
  const CompiledDesign design = compile(qnet, CompileOptions{});
  const std::string text = describe(design, qnet);
  EXPECT_NE(text.find("conv units"), std::string::npos);
  EXPECT_NE(text.find("pool_unit"), std::string::npos);
  EXPECT_NE(text.find("linear_unit"), std::string::npos);
  EXPECT_NE(text.find("predicted latency"), std::string::npos);
}

TEST(Compiler, HigherClockLowersLatency) {
  Rng rng(6);
  nn::Network net = rsnn::testing::small_random_net(rng);
  const auto qnet = quant::quantize(net, quant::QuantizeConfig{3, 4});
  CompileOptions slow, fast;
  slow.clock_mhz = 100;
  fast.clock_mhz = 200;
  EXPECT_GT(compile(qnet, slow).predicted_latency_us,
            compile(qnet, fast).predicted_latency_us);
}

TEST(Compiler, CompileForLatencyPicksSmallestSufficientDesign) {
  Rng rng(7);
  nn::Network net = nn::make_lenet5();
  net.init_params(rng);
  const auto qnet = quant::quantize(net, quant::QuantizeConfig{3, 3});
  CompileOptions base;
  base.clock_mhz = 100.0;

  // A loose target must be met by the 1-unit design.
  const auto loose = compile_for_latency(qnet, base, 1e9);
  EXPECT_EQ(loose.config.num_conv_units, 1);

  // A mid target forces more units but not the maximum.
  const auto one_unit = compile(qnet, base);
  const auto mid = compile_for_latency(
      qnet, base, one_unit.predicted_latency_us * 0.6);
  EXPECT_GT(mid.config.num_conv_units, 1);
  EXPECT_LE(mid.predicted_latency_us, one_unit.predicted_latency_us * 0.6);

  // An impossible target yields the fastest candidate (latency floor from
  // the non-duplicated pooling/linear units).
  const auto impossible = compile_for_latency(qnet, base, 1.0);
  EXPECT_GE(impossible.config.num_conv_units, 8);
}

TEST(Compiler, CompileForLatencyRejectsBadArgs) {
  Rng rng(8);
  nn::Network net = rsnn::testing::small_random_net(rng);
  const auto qnet = quant::quantize(net, quant::QuantizeConfig{3, 4});
  EXPECT_THROW(compile_for_latency(qnet, CompileOptions{}, 0.0),
               ContractViolation);
  EXPECT_THROW(compile_for_latency(qnet, CompileOptions{}, 10.0, {}),
               ContractViolation);
}

TEST(Compiler, RejectsEmptyNetwork) {
  quant::QuantizedNetwork empty;
  empty.time_bits = 4;
  empty.weight_bits = 3;
  EXPECT_THROW(compile(empty, CompileOptions{}), ContractViolation);
}

}  // namespace
}  // namespace rsnn::compiler
