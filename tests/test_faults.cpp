// Fault tolerance: deterministic fault injection, replica supervision
// (degrade / quarantine / rebuild), per-request deadlines and priority
// classes, bounded retry with backoff, graceful degradation under overload,
// and the chaos acceptance run — a seeded plan killing one replica mid-run
// with transient errors sprinkled on top, under which every request must
// still resolve with a typed outcome and bit-identical logits.
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "compiler/partition.hpp"
#include "engine/engine.hpp"
#include "engine/fault.hpp"
#include "engine/serving_pool.hpp"
#include "hw/accelerator.hpp"
#include "nn/zoo.hpp"
#include "quant/quantize.hpp"
#include "test_helpers.hpp"

namespace rsnn::engine {
namespace {

/// LeNet-5 at T=4 on the paper's reference design — the acceptance workload.
struct LeNetFixture {
  quant::QuantizedNetwork qnet;
  ir::LayerProgram program;

  LeNetFixture() {
    Rng rng(2024);
    nn::Network lenet = nn::make_lenet5();
    lenet.init_params(rng);
    qnet = quant::quantize(lenet, quant::QuantizeConfig{3, 4});
    program = ir::lower(qnet, hw::lenet_reference_config());
  }
};

std::vector<TensorI> lenet_batch(int count, int T) {
  Rng rng(99);
  std::vector<TensorI> codes;
  for (int i = 0; i < count; ++i)
    codes.push_back(quant::encode_activations(
        rsnn::testing::random_image(Shape{1, 32, 32}, rng), T));
  return codes;
}

/// A conv+pool+linear toy at T=4 whose service time is microseconds even
/// under sanitizers — for wall-clock-sensitive tests (stall budgets,
/// deadlines) where LeNet's real inference time would race the thresholds.
struct TinyFixture {
  quant::QuantizedNetwork qnet;
  ir::LayerProgram program;

  TinyFixture() {
    Rng rng(5);
    nn::Network net(Shape{1, 16, 16});
    net.add<nn::Conv2d>(nn::Conv2dConfig{1, 8, 3, 1, 0});
    net.add<nn::ClippedReLU>(nn::ClippedReLUConfig{1.0f, 0});
    net.add<nn::Pool2d>(nn::Pool2dConfig{2});
    net.add<nn::Flatten>();
    net.add<nn::Linear>(nn::LinearConfig{8 * 7 * 7, 10});
    net.init_params(rng);
    qnet = quant::quantize(net, quant::QuantizeConfig{3, 4});
    hw::AcceleratorConfig config;
    config.num_conv_units = 2;
    config.conv = hw::ConvUnitGeometry{16, 3, 24};
    config.pool = hw::PoolUnitGeometry{8, 2, 16};
    config.linear = hw::LinearUnitGeometry{8, 24};
    program = ir::lower(qnet, config);
  }
};

std::vector<TensorI> tiny_batch(int count, int T) {
  Rng rng(99);
  std::vector<TensorI> codes;
  for (int i = 0; i < count; ++i)
    codes.push_back(quant::encode_activations(
        rsnn::testing::random_image(Shape{1, 16, 16}, rng), T));
  return codes;
}

std::vector<hw::AccelRunResult> monolithic_reference(
    const ir::LayerProgram& program, EngineKind kind,
    const std::vector<TensorI>& batch) {
  auto engine = make_engine(kind, program);
  std::vector<hw::AccelRunResult> results;
  for (const TensorI& codes : batch) results.push_back(engine->run_codes(codes));
  return results;
}

FaultPlan plan_of(const std::string& text) {
  FaultPlan plan;
  std::string error;
  EXPECT_TRUE(parse_fault_plan(text, &plan, &error)) << error;
  return plan;
}

// ----------------------------------------------------- plan parsing

TEST(FaultPlan, ParsesEverySpecKind) {
  const FaultPlan plan =
      plan_of("seed:42,kill:r2@5,stall:r0@3x25,err:p0.05,err:r1@7");
  EXPECT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.specs.size(), 4u);
  EXPECT_EQ(plan.specs[0].kind, FaultKind::kKill);
  EXPECT_EQ(plan.specs[0].replica, 2);
  EXPECT_EQ(plan.specs[0].at_attempt, 5);
  EXPECT_EQ(plan.specs[1].kind, FaultKind::kStall);
  EXPECT_DOUBLE_EQ(plan.specs[1].stall_ms, 25.0);
  EXPECT_EQ(plan.specs[2].kind, FaultKind::kError);
  EXPECT_DOUBLE_EQ(plan.specs[2].probability, 0.05);
  EXPECT_EQ(plan.specs[2].replica, -1);
  EXPECT_EQ(plan.specs[3].replica, 1);

  const std::string described = describe_fault_plan(plan);
  EXPECT_NE(described.find("kill:r2@5"), std::string::npos) << described;
  EXPECT_NE(described.find("seed 42"), std::string::npos) << described;
  EXPECT_EQ(describe_fault_plan(FaultPlan{}), "none");

  // An empty plan text parses to an empty (disarmed) plan.
  EXPECT_TRUE(plan_of("").empty());
}

TEST(FaultPlan, RejectsMalformedSpecsWithFriendlyErrors) {
  const std::vector<std::string> bad = {
      "kill:r2",      // missing @attempt
      "kill:r2@0",    // attempts are 1-based
      "kill:@5",      // missing replica
      "stall:r0@3",   // missing duration
      "err:p1.5",     // probability above 1
      "err:px",       // not a number
      "seed:abc",     // not a u64
      "bogus:1",      // unknown kind
  };
  for (const std::string& text : bad) {
    FaultPlan plan;
    std::string error;
    EXPECT_FALSE(parse_fault_plan(text, &plan, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
    EXPECT_EQ(error.find('\n'), std::string::npos)
        << "errors are one-liners: " << error;
  }
}

// ------------------------------------------------ injector determinism

TEST(FaultInjector, SeededPlansReplayIdentically) {
  const FaultPlan plan = plan_of("seed:7,err:p0.3");
  FaultInjector a(plan, 2), b(plan, 2);
  const auto sequence = [](FaultInjector& injector, int replica) {
    std::vector<bool> threw;
    for (int i = 0; i < 64; ++i) {
      try {
        injector.before_attempt(replica);
        threw.push_back(false);
      } catch (const ReplicaFaultError&) {
        threw.push_back(true);
      }
    }
    return threw;
  };
  // Interleave replica 1 on `a` to prove per-replica streams are
  // independent: replica 0's fault sequence must not shift.
  const auto noise = sequence(a, 1);
  EXPECT_EQ(sequence(a, 0), sequence(b, 0));
  EXPECT_EQ(noise, sequence(b, 1));
  EXPECT_EQ(a.attempts(0), 64);
  EXPECT_GT(a.injected_errors(), 0);
}

TEST(FaultInjector, KillIsPermanentUntilRevived) {
  FaultInjector injector(plan_of("kill:r0@2"), 1);
  EXPECT_NO_THROW(injector.before_attempt(0));
  EXPECT_THROW(injector.before_attempt(0), ReplicaDeadError);
  EXPECT_TRUE(injector.is_dead(0));
  EXPECT_THROW(injector.before_attempt(0), ReplicaDeadError);
  injector.revive(0);
  EXPECT_FALSE(injector.is_dead(0));
  EXPECT_NO_THROW(injector.before_attempt(0));
  EXPECT_EQ(injector.injected_kills(), 1);

  // Specs aimed past the fleet fail construction, not the Nth attempt.
  EXPECT_THROW(FaultInjector(plan_of("kill:r3@1"), 2), ContractViolation);
}

// --------------------------------------------------- retry and health

TEST(ServingPool, TransientFaultRetriesOnAnotherReplica) {
  const LeNetFixture fx;
  const auto batch = lenet_batch(1, fx.qnet.time_bits);
  const auto reference =
      monolithic_reference(fx.program, EngineKind::kReference, batch);

  ServingPoolOptions options;
  options.replicas = 2;
  options.fault_plan = plan_of("err:r0@1,err:r0@2");
  ServingPool pool(fx.program, EngineKind::kReference, options);

  // Whichever replica draws the request, it resolves kOk: replica 0's two
  // poisoned attempts are retried (preferentially on replica 1).
  const auto run = pool.run_batch(batch);
  ASSERT_EQ(run.results[0].status, RequestStatus::kOk)
      << run.results[0].error;
  EXPECT_EQ(run.results[0].result.logits, reference[0].logits);

  const ServingStats stats = pool.stats();
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.retries, stats.replica_failures);
  EXPECT_EQ(stats.failed, 0);
}

TEST(ServingPool, RetryStormIsBoundedByBackoffCap) {
  // Every attempt fails (err:p1.0): each request must consume exactly
  // max_retries + 1 attempts and resolve kReplicaFailed — no unbounded
  // retry storm, no hang. Health penalties are disabled (huge thresholds)
  // to isolate the retry bound.
  const LeNetFixture fx;
  const auto batch = lenet_batch(3, fx.qnet.time_bits);

  ServingPoolOptions options;
  options.replicas = 2;
  options.max_retries = 2;
  options.backoff_base_ms = 0.05;
  options.backoff_cap_ms = 0.2;
  options.quarantine_after_failures = 1000;
  options.fault_plan = plan_of("err:p1.0");
  ServingPool pool(fx.program, EngineKind::kReference, options);

  const auto run = pool.run_batch(batch);
  for (const ServingResult& result : run.results) {
    EXPECT_EQ(result.status, RequestStatus::kReplicaFailed);
    EXPECT_EQ(result.attempts, options.max_retries + 1);
    EXPECT_FALSE(result.error.empty());
  }
  const ServingStats stats = pool.stats();
  EXPECT_EQ(stats.failed, 3);
  EXPECT_EQ(stats.retries, 3 * options.max_retries);
  EXPECT_DOUBLE_EQ(stats.per_class[0].goodput, 0.0);
}

TEST(ServingPool, DeadReplicaQuarantinesAndFailsFast) {
  // Single replica, killed on its first attempt, no rebuild: every queued
  // request resolves kReplicaFailed (no hang, no invalid future), and later
  // submissions fail fast instead of queueing for a fleet of zero.
  const LeNetFixture fx;
  const auto batch = lenet_batch(3, fx.qnet.time_bits);

  ServingPoolOptions options;
  options.fault_plan = plan_of("kill:r0@1");
  ServingPool pool(fx.program, EngineKind::kReference, options);

  const auto run = pool.run_batch(batch);
  for (const ServingResult& result : run.results) {
    EXPECT_EQ(result.status, RequestStatus::kReplicaFailed);
    EXPECT_FALSE(result.error.empty());
  }

  const ServingStats stats = pool.stats();
  EXPECT_EQ(stats.active_replicas, 0);
  ASSERT_EQ(stats.replica_health.size(), 1u);
  EXPECT_EQ(stats.replica_health[0], ReplicaHealth::kQuarantined);

  auto late = pool.submit(batch[0]);
  const ServingResult result = late.get();
  EXPECT_EQ(result.status, RequestStatus::kReplicaFailed);
  EXPECT_NE(result.error.find("no active replicas"), std::string::npos);
}

TEST(ServingPool, DyingReplicaHandsInFlightBatchToSurvivor) {
  // Replica 0 dies on its first batched dispatch and the in-flight batch is
  // retried, bit-identical, on replica 1. Two batches' worth of work, so
  // replica 0 is guaranteed a dispatch no matter which replica wins the
  // race for the first batch (a single batch can be swallowed whole by
  // replica 1, leaving replica 0 — and the kill — untouched).
  const LeNetFixture fx;
  const auto batch = lenet_batch(8, fx.qnet.time_bits);
  const auto reference =
      monolithic_reference(fx.program, EngineKind::kReference, batch);

  ServingPoolOptions options;
  options.replicas = 2;
  options.policy = AdmissionPolicy::kBatch;
  options.max_batch = 4;
  options.max_wait_ms = 20.0;
  options.fault_plan = plan_of("kill:r0@1");
  ServingPool pool(fx.program, EngineKind::kReference, options);

  const auto run = pool.run_batch(batch);
  ASSERT_EQ(run.ok_count(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(run.results[i].result.logits, reference[i].logits)
        << "image " << i;
    EXPECT_EQ(run.results[i].replica, 1) << "image " << i;
  }
  const ServingStats stats = pool.stats();
  EXPECT_EQ(stats.active_replicas, 1);
  EXPECT_EQ(stats.replica_health[0], ReplicaHealth::kQuarantined);
  EXPECT_EQ(stats.completed, 8);
}

TEST(ServingPool, QuarantinedReplicaIsRebuiltWhenConfigured) {
  // The same killed single replica, but with rebuild enabled: the pool
  // re-creates the submitter (re-flashes the device), revives the injector
  // dead flag, and the retried request completes.
  const LeNetFixture fx;
  const auto batch = lenet_batch(2, fx.qnet.time_bits);
  const auto reference =
      monolithic_reference(fx.program, EngineKind::kReference, batch);

  ServingPoolOptions options;
  options.rebuild_quarantined = true;
  options.fault_plan = plan_of("kill:r0@1");
  ServingPool pool(fx.program, EngineKind::kReference, options);

  const auto run = pool.run_batch(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(run.results[i].status, RequestStatus::kOk)
        << "image " << i << ": " << status_name(run.results[i].status)
        << " after " << run.results[i].attempts
        << " attempt(s): " << run.results[i].error;
    EXPECT_EQ(run.results[i].result.logits, reference[i].logits)
        << "image " << i;
  }

  const ServingStats stats = pool.stats();
  EXPECT_GE(stats.rebuilds, 1);
  EXPECT_EQ(stats.active_replicas, 1);
  EXPECT_EQ(stats.replica_health[0], ReplicaHealth::kHealthy);
  ASSERT_NE(pool.fault_injector(), nullptr);
  EXPECT_FALSE(pool.fault_injector()->is_dead(0));
}

TEST(ServingPool, StallDetectionDegradesAndQuarantines) {
  // Replica 0 stalls 500ms on each of its first two attempts against a
  // 250ms stall budget. The tiny fixture keeps natural service in the
  // microseconds even sanitized and loaded, so only injected stalls can
  // trip detection: the work still completes (stalls deliver late, they
  // do not fail), but the replica quarantines after the second stall and
  // replica 1 carries the rest.
  const TinyFixture fx;
  const auto batch = tiny_batch(6, fx.qnet.time_bits);

  ServingPoolOptions options;
  options.replicas = 2;
  options.stall_timeout_ms = 250.0;
  options.quarantine_after_stalls = 2;
  options.fault_plan = plan_of("stall:r0@1x500,stall:r0@2x500");
  ServingPool pool(fx.program, EngineKind::kReference, options);

  const auto run = pool.run_batch(batch);
  EXPECT_EQ(run.ok_count(), batch.size()) << "stalled work still completes";

  const ServingStats stats = pool.stats();
  EXPECT_EQ(stats.completed, static_cast<std::int64_t>(batch.size()));
  EXPECT_EQ(stats.failed, 0);
  // Scheduling decides how many of replica 0's attempts actually stalled
  // before quarantine, but at least one must have been detected.
  EXPECT_GE(stats.stalls, 1);
  EXPECT_LE(stats.active_replicas, 2);
  if (stats.stalls >= 2) {
    EXPECT_EQ(stats.replica_health[0], ReplicaHealth::kQuarantined);
    EXPECT_EQ(stats.active_replicas, 1);
  } else {
    EXPECT_EQ(stats.replica_health[0], ReplicaHealth::kDegraded);
  }
}

// ------------------------------------------- deadlines and priorities

TEST(ServingPool, QueuedDeadlineExpiresTyped) {
  // One replica held busy by an injected 150ms stall; a queued request with
  // a 10ms deadline must fail fast with kDeadlineExceeded once the
  // dispatcher returns — it never occupies the replica.
  const TinyFixture fx;
  const auto batch = tiny_batch(2, fx.qnet.time_bits);

  ServingPoolOptions options;
  options.fault_plan = plan_of("stall:r0@1x150");
  ServingPool pool(fx.program, EngineKind::kReference, options);

  auto blocker = pool.submit(batch[0]);
  // Let the dispatcher pull the blocker first — submitted back-to-back, EDF
  // would dispatch the deadlined request ahead of the deadline-less blocker.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  RequestOptions hurried;
  hurried.deadline_ms = 10.0;
  auto doomed = pool.submit(batch[1], hurried);

  EXPECT_EQ(blocker.get().status, RequestStatus::kOk);
  const ServingResult result = doomed.get();
  EXPECT_EQ(result.status, RequestStatus::kDeadlineExceeded);
  EXPECT_EQ(result.attempts, 0) << "an expired request never dispatched";

  const ServingStats stats = pool.stats();
  EXPECT_EQ(stats.deadline_exceeded, 1);
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.per_class[0].deadline_exceeded, 1);
}

TEST(ServingPool, LatencyClassDispatchesBeforeBulkAndEdfWithinClass) {
  // Hold the single replica busy (injected stall) so the queue accumulates,
  // then submit bulk work first, latency work last. Dispatch order must be
  // class-first (latency before bulk) and earliest-deadline-first within a
  // class — asserted via dispatch_seq, not wall clocks.
  const LeNetFixture fx;
  const auto batch = lenet_batch(4, fx.qnet.time_bits);

  ServingPoolOptions options;
  options.fault_plan = plan_of("stall:r0@1x60");
  ServingPool pool(fx.program, EngineKind::kReference, options);

  auto blocker = pool.submit(batch[0]);  // dispatches, stalls 60ms
  // Give the dispatcher time to pull the blocker so the queue is empty.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  RequestOptions bulk;
  bulk.priority = PriorityClass::kBulk;
  RequestOptions relaxed;  // latency class, generous deadline
  relaxed.deadline_ms = 5000.0;
  RequestOptions urgent;  // latency class, tighter deadline, submitted last
  urgent.deadline_ms = 1000.0;

  auto bulk_ticket = pool.submit(batch[1], bulk);
  auto relaxed_ticket = pool.submit(batch[2], relaxed);
  auto urgent_ticket = pool.submit(batch[3], urgent);

  const ServingResult b = bulk_ticket.get();
  const ServingResult r = relaxed_ticket.get();
  const ServingResult u = urgent_ticket.get();
  ASSERT_EQ(b.status, RequestStatus::kOk) << b.error;
  ASSERT_EQ(r.status, RequestStatus::kOk) << r.error;
  ASSERT_EQ(u.status, RequestStatus::kOk) << u.error;
  EXPECT_LT(u.dispatch_seq, r.dispatch_seq)
      << "EDF within the latency class";
  EXPECT_LT(r.dispatch_seq, b.dispatch_seq) << "latency class before bulk";
}

TEST(ServingPool, OverloadShedsNewestBulkForLatencyWork) {
  // A full queue holding bulk work must shed its newest bulk request to
  // admit latency-class work (degradation order: bulk first) instead of
  // blocking the latency producer.
  const LeNetFixture fx;
  const auto batch = lenet_batch(4, fx.qnet.time_bits);

  ServingPoolOptions options;
  options.queue_capacity = 2;
  options.fault_plan = plan_of("stall:r0@1x100");
  ServingPool pool(fx.program, EngineKind::kReference, options);

  auto blocker = pool.submit(batch[0]);  // dispatched, stalling
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  RequestOptions bulk;
  bulk.priority = PriorityClass::kBulk;
  auto bulk_old = pool.submit(batch[1], bulk);
  auto bulk_new = pool.submit(batch[2], bulk);  // fills the queue
  auto latency = pool.submit(batch[3]);         // evicts bulk_new

  EXPECT_EQ(blocker.get().status, RequestStatus::kOk);
  EXPECT_EQ(bulk_old.get().status, RequestStatus::kOk);
  const ServingResult shed = bulk_new.get();
  EXPECT_EQ(shed.status, RequestStatus::kRejected);
  EXPECT_NE(shed.error.find("shed"), std::string::npos) << shed.error;
  EXPECT_EQ(latency.get().status, RequestStatus::kOk);

  const ServingStats stats = pool.stats();
  EXPECT_EQ(stats.shed_bulk, 1);
  EXPECT_EQ(stats.per_class[1].rejected, 1);
  EXPECT_EQ(stats.completed, 3);
}

// ------------------------------------------------ shutdown edge cases

TEST(ServingPool, ShutdownUnblocksProducersStuckOnAFullQueue) {
  // Producers blocked on a full queue while the replica stalls: shutdown
  // must wake them with a typed rejection for work that never got admitted,
  // while everything admitted still completes (drain semantics).
  const LeNetFixture fx;
  const auto batch = lenet_batch(1, fx.qnet.time_bits);

  ServingPoolOptions options;
  options.queue_capacity = 1;
  options.fault_plan = plan_of("stall:r0@1x150");
  ServingPool pool(fx.program, EngineKind::kReference, options);

  auto blocker = pool.submit(batch[0]);  // dispatched, stalling 150ms
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  constexpr int kProducers = 3;
  std::vector<std::future<ServingResult>> tickets(kProducers);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back(
        [&, p] { tickets[p] = pool.submit(batch[0]); });
  // Let the producers pile up: one fills the queue, the rest block on it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  pool.shutdown(/*drain=*/true);
  for (std::thread& producer : producers) producer.join();

  EXPECT_EQ(blocker.get().status, RequestStatus::kOk);
  int ok = 0, rejected = 0;
  for (auto& ticket : tickets) {
    ASSERT_TRUE(ticket.valid());
    const ServingResult result = ticket.get();
    if (result.status == RequestStatus::kOk)
      ++ok;
    else if (result.status == RequestStatus::kRejected)
      ++rejected;
    else
      FAIL() << "unexpected status " << status_name(result.status);
  }
  EXPECT_EQ(ok + rejected, kProducers);
  EXPECT_GE(rejected, 1) << "blocked producers must not hang past shutdown";
}

TEST(ServingPool, NonDrainingShutdownCancelsUndispatchedWork) {
  const LeNetFixture fx;
  const auto batch = lenet_batch(3, fx.qnet.time_bits);

  ServingPoolOptions options;
  options.queue_capacity = 8;
  options.fault_plan = plan_of("stall:r0@1x100");
  ServingPool pool(fx.program, EngineKind::kReference, options);

  auto in_flight = pool.submit(batch[0]);  // dispatched, stalling
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  auto queued_a = pool.submit(batch[1]);
  auto queued_b = pool.submit(batch[2]);
  pool.shutdown(/*drain=*/false);

  EXPECT_EQ(in_flight.get().status, RequestStatus::kOk)
      << "in-flight dispatches still complete";
  EXPECT_EQ(queued_a.get().status, RequestStatus::kCancelled);
  EXPECT_EQ(queued_b.get().status, RequestStatus::kCancelled);

  const ServingStats stats = pool.stats();
  EXPECT_EQ(stats.cancelled, 2);
  EXPECT_EQ(stats.completed, 1);

  auto late = pool.submit(batch[0]);
  EXPECT_EQ(late.get().status, RequestStatus::kRejected);
}

// ------------------------------------------------- chaos (acceptance)

TEST(ServingPool, ChaosRunSurvivesKilledReplicaAndTransientErrors) {
  // The PR's acceptance scenario: 4 replicas, a seeded plan that kills one
  // replica mid-run and sprinkles 5% transient errors. Every request must
  // resolve with a typed outcome (no hangs, no invalid futures), every kOk
  // result must be bit-identical to monolithic execution, and latency-class
  // goodput must stay >= 99%.
  const LeNetFixture fx;
  constexpr int kRequests = 48;
  const auto batch = lenet_batch(kRequests, fx.qnet.time_bits);
  const auto reference =
      monolithic_reference(fx.program, EngineKind::kReference, batch);

  ServingPoolOptions options;
  options.replicas = 4;
  options.queue_capacity = 64;
  options.max_retries = 4;  // 5% transients: 4 retries make loss ~1e-6
  options.backoff_base_ms = 0.05;
  options.backoff_cap_ms = 1.0;
  options.fault_plan = plan_of("seed:7,kill:r2@5,err:p0.05");
  ServingPool pool(fx.program, EngineKind::kReference, options);

  std::vector<std::future<ServingResult>> tickets;
  tickets.reserve(kRequests);
  RequestOptions latency;
  latency.deadline_ms = 0.0;  // no deadline: isolate fault handling
  for (const TensorI& codes : batch)
    tickets.push_back(pool.submit(codes, latency));

  int ok = 0;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(tickets[i].valid()) << "request " << i;
    const ServingResult result = tickets[i].get();
    if (result.status == RequestStatus::kOk) {
      ++ok;
      EXPECT_EQ(result.result.logits, reference[i].logits)
          << "request " << i << " served by replica " << result.replica;
      EXPECT_EQ(result.result.predicted_class,
                reference[i].predicted_class);
    } else {
      EXPECT_EQ(result.status, RequestStatus::kReplicaFailed)
          << "request " << i;
    }
  }

  const ServingStats stats = pool.stats();
  EXPECT_EQ(stats.completed + stats.failed, kRequests)
      << "every request resolves";
  EXPECT_GE(stats.per_class[0].goodput, 0.99)
      << "latency-class goodput under chaos";
  EXPECT_EQ(ok, static_cast<int>(stats.completed));

  // The killed replica is out of the fleet; the survivors carried the load.
  ASSERT_NE(pool.fault_injector(), nullptr);
  EXPECT_EQ(pool.fault_injector()->injected_kills(), 1);
  EXPECT_TRUE(pool.fault_injector()->is_dead(2));
  EXPECT_EQ(stats.active_replicas, 3);
  EXPECT_EQ(stats.replica_health[2], ReplicaHealth::kQuarantined);
  EXPECT_GT(stats.retries, 0) << "transient errors were retried";
}

// Pipelined replicas share the same fault path (stage 0 consults the
// injector once per image): a killed pipelined replica hands its work to
// the surviving replica with logits intact.
TEST(ServingPool, PipelinedReplicaSurvivesInjectedKill) {
  const LeNetFixture fx;
  const auto batch = lenet_batch(3, fx.qnet.time_bits);
  const auto reference =
      monolithic_reference(fx.program, EngineKind::kReference, batch);

  ServingPoolOptions options;
  options.replicas = 2;
  options.segments = compiler::partition_balance_latency(fx.program, 2);
  options.fault_plan = plan_of("kill:r0@1");
  ServingPool pool(fx.program, EngineKind::kReference, options);

  const auto run = pool.run_batch(batch);
  ASSERT_EQ(run.ok_count(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(run.results[i].result.logits, reference[i].logits)
        << "image " << i;
    EXPECT_EQ(run.results[i].replica, 1);
  }
  EXPECT_EQ(pool.stats().active_replicas, 1);
}

}  // namespace
}  // namespace rsnn::engine
