#include <gtest/gtest.h>

#include <cstdio>

#include "nn/activation.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/network.hpp"
#include "nn/optimizer.hpp"
#include "nn/pool2d.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"
#include "nn/zoo.hpp"
#include "test_helpers.hpp"

namespace rsnn::nn {
namespace {

using rsnn::testing::random_tensor;

// Central-difference gradient check for one layer + quadratic loss.
// Loss = 0.5 * sum(out^2) so dLoss/dout = out.
void check_gradients(Layer& layer, const Shape& input_shape, Rng& rng,
                     double tolerance = 2e-2) {
  const TensorF input = random_tensor(input_shape, rng);
  const TensorF out = layer.forward(input, /*training=*/true);
  const TensorF grad_input = layer.backward(out);

  auto loss_at = [&](const TensorF& x) {
    const TensorF y = layer.forward(x, false);
    double loss = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i)
      loss += 0.5 * static_cast<double>(y.at_flat(i)) * y.at_flat(i);
    return loss;
  };

  // Check a sample of input gradients.
  const double eps = 1e-3;
  Rng pick(99);
  for (int trial = 0; trial < 8; ++trial) {
    const std::int64_t i =
        static_cast<std::int64_t>(pick.next_below(
            static_cast<std::uint64_t>(input.numel())));
    TensorF plus = input, minus = input;
    plus.at_flat(i) += static_cast<float>(eps);
    minus.at_flat(i) -= static_cast<float>(eps);
    const double numeric = (loss_at(plus) - loss_at(minus)) / (2 * eps);
    EXPECT_NEAR(grad_input.at_flat(i), numeric,
                tolerance * (1.0 + std::abs(numeric)))
        << "input grad at " << i;
  }

  // Check a sample of parameter gradients.
  for (Param* p : layer.params()) {
    for (int trial = 0; trial < 6; ++trial) {
      const std::int64_t i = static_cast<std::int64_t>(
          pick.next_below(static_cast<std::uint64_t>(p->value.numel())));
      const float saved = p->value.at_flat(i);
      p->value.at_flat(i) = saved + static_cast<float>(eps);
      const double lp = loss_at(input);
      p->value.at_flat(i) = saved - static_cast<float>(eps);
      const double lm = loss_at(input);
      p->value.at_flat(i) = saved;
      const double numeric = (lp - lm) / (2 * eps);
      EXPECT_NEAR(p->grad.at_flat(i), numeric,
                  tolerance * (1.0 + std::abs(numeric)))
          << p->name << " grad at " << i;
    }
  }
}

// ------------------------------------------------------------------- conv

TEST(Conv2d, KnownValueForward) {
  Conv2d conv(Conv2dConfig{1, 1, 2, 1, 0});
  conv.weight().value(0, 0, 0, 0) = 1.0f;
  conv.weight().value(0, 0, 0, 1) = 2.0f;
  conv.weight().value(0, 0, 1, 0) = 3.0f;
  conv.weight().value(0, 0, 1, 1) = 4.0f;
  conv.bias().value(0) = 0.5f;

  TensorF input(Shape{1, 1, 3, 3});
  for (std::int64_t i = 0; i < 9; ++i) input.at_flat(i) = static_cast<float>(i);
  const TensorF out = conv.forward(input, false);
  ASSERT_EQ(out.shape(), Shape({1, 1, 2, 2}));
  // window [[0,1],[3,4]] . [[1,2],[3,4]] = 0+2+9+16 = 27, + bias.
  EXPECT_FLOAT_EQ(out(0, 0, 0, 0), 27.5f);
  EXPECT_FLOAT_EQ(out(0, 0, 1, 1), 4 + 10 + 21 + 32 + 0.5f);
}

TEST(Conv2d, OutputShapeStridePadding) {
  Conv2d conv(Conv2dConfig{3, 8, 3, 2, 1});
  EXPECT_EQ(conv.output_shape(Shape{2, 3, 9, 9}), Shape({2, 8, 5, 5}));
  EXPECT_THROW(conv.output_shape(Shape{2, 4, 9, 9}), ContractViolation);
}

TEST(Conv2d, GradientCheckNoPadding) {
  Rng rng(1);
  Conv2d conv(Conv2dConfig{2, 3, 3, 1, 0});
  conv.init_params(rng);
  check_gradients(conv, Shape{2, 2, 6, 6}, rng);
}

TEST(Conv2d, GradientCheckWithStrideAndPadding) {
  Rng rng(2);
  Conv2d conv(Conv2dConfig{2, 2, 3, 2, 1});
  conv.init_params(rng);
  check_gradients(conv, Shape{1, 2, 7, 7}, rng);
}

TEST(Conv2d, BackwardBeforeForwardThrows) {
  Conv2d conv(Conv2dConfig{1, 1, 2});
  EXPECT_THROW(conv.backward(TensorF(Shape{1, 1, 2, 2})), ContractViolation);
}

// ------------------------------------------------------------------- pool

TEST(Pool2d, AverageKnownValues) {
  Pool2d pool(Pool2dConfig{2});
  TensorF input(Shape{1, 1, 2, 2});
  input(0, 0, 0, 0) = 1.0f;
  input(0, 0, 0, 1) = 2.0f;
  input(0, 0, 1, 0) = 3.0f;
  input(0, 0, 1, 1) = 4.0f;
  const TensorF out = pool.forward(input, false);
  EXPECT_FLOAT_EQ(out(0, 0, 0, 0), 2.5f);
}

TEST(Pool2d, MaxKnownValues) {
  Pool2d pool(Pool2dConfig{2, 0, PoolKind::kMax});
  TensorF input(Shape{1, 1, 2, 2});
  input(0, 0, 1, 0) = 5.0f;
  const TensorF out = pool.forward(input, false);
  EXPECT_FLOAT_EQ(out(0, 0, 0, 0), 5.0f);
}

TEST(Pool2d, AvgGradientCheck) {
  Rng rng(3);
  Pool2d pool(Pool2dConfig{2});
  check_gradients(pool, Shape{2, 3, 6, 6}, rng);
}

TEST(Pool2d, MaxBackwardRoutesToArgmax) {
  Pool2d pool(Pool2dConfig{2, 0, PoolKind::kMax});
  TensorF input(Shape{1, 1, 2, 2}, 0.0f);
  input(0, 0, 1, 1) = 9.0f;
  pool.forward(input, true);
  TensorF grad(Shape{1, 1, 1, 1}, 1.0f);
  const TensorF gi = pool.backward(grad);
  EXPECT_FLOAT_EQ(gi(0, 0, 1, 1), 1.0f);
  EXPECT_FLOAT_EQ(gi(0, 0, 0, 0), 0.0f);
}

// ----------------------------------------------------------------- linear

TEST(Linear, KnownValueForward) {
  Linear fc(LinearConfig{2, 2});
  fc.weight().value(0, 0) = 1.0f;
  fc.weight().value(0, 1) = 2.0f;
  fc.weight().value(1, 0) = -1.0f;
  fc.weight().value(1, 1) = 0.5f;
  fc.bias().value(0) = 0.1f;
  TensorF input(Shape{1, 2});
  input(0, 0) = 3.0f;
  input(0, 1) = 4.0f;
  const TensorF out = fc.forward(input, false);
  EXPECT_FLOAT_EQ(out(0, 0), 3 + 8 + 0.1f);
  EXPECT_FLOAT_EQ(out(0, 1), -3 + 2);
}

TEST(Linear, GradientCheck) {
  Rng rng(4);
  Linear fc(LinearConfig{6, 4});
  fc.init_params(rng);
  check_gradients(fc, Shape{3, 6}, rng);
}

// ------------------------------------------------------------ activations

TEST(ClippedReLU, ClipsBothSides) {
  ClippedReLU act(ClippedReLUConfig{1.0f, 0});
  TensorF input(Shape{1, 4});
  input(0, 0) = -0.5f;
  input(0, 1) = 0.25f;
  input(0, 2) = 0.999f;
  input(0, 3) = 3.0f;
  const TensorF out = act.forward(input, false);
  EXPECT_FLOAT_EQ(out(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(out(0, 1), 0.25f);
  EXPECT_FLOAT_EQ(out(0, 3), 1.0f);
}

TEST(ClippedReLU, FakeQuantSnapsToGrid) {
  ClippedReLU act(ClippedReLUConfig{1.0f, 3});  // 8 levels of 0.125
  TensorF input(Shape{1, 3});
  input(0, 0) = 0.3f;
  input(0, 1) = 0.99f;
  input(0, 2) = 0.125f;
  const TensorF out = act.forward(input, false);
  EXPECT_FLOAT_EQ(out(0, 0), 0.25f);   // floor(0.3 / 0.125) * 0.125
  EXPECT_FLOAT_EQ(out(0, 1), 0.875f);  // clipped to top grid level
  EXPECT_FLOAT_EQ(out(0, 2), 0.125f);
}

TEST(ClippedReLU, StraightThroughGradient) {
  ClippedReLU act(ClippedReLUConfig{1.0f, 0});
  TensorF input(Shape{1, 3});
  input(0, 0) = -0.5f;
  input(0, 1) = 0.5f;
  input(0, 2) = 1.5f;
  act.forward(input, true);
  const TensorF gi = act.backward(TensorF(Shape{1, 3}, 1.0f));
  EXPECT_FLOAT_EQ(gi(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(gi(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(gi(0, 2), 0.0f);
}

TEST(ReLUTest, ForwardBackward) {
  ReLU act;
  TensorF input(Shape{1, 2});
  input(0, 0) = -1.0f;
  input(0, 1) = 2.0f;
  const TensorF out = act.forward(input, true);
  EXPECT_FLOAT_EQ(out(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(out(0, 1), 2.0f);
  const TensorF gi = act.backward(TensorF(Shape{1, 2}, 3.0f));
  EXPECT_FLOAT_EQ(gi(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(gi(0, 1), 3.0f);
}

// ---------------------------------------------------------------- flatten

TEST(Flatten, RoundTrip) {
  Flatten flat;
  TensorF input(Shape{2, 3, 4, 5});
  const TensorF out = flat.forward(input, true);
  EXPECT_EQ(out.shape(), Shape({2, 60}));
  const TensorF back = flat.backward(out);
  EXPECT_EQ(back.shape(), input.shape());
}

// ------------------------------------------------------------------- loss

TEST(Loss, SoftmaxSumsToOne) {
  Rng rng(5);
  const TensorF logits = random_tensor(Shape{4, 7}, rng, -3, 3);
  const TensorF probs = softmax(logits);
  for (std::int64_t n = 0; n < 4; ++n) {
    float sum = 0;
    for (std::int64_t c = 0; c < 7; ++c) sum += probs(n, c);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(Loss, CrossEntropyPerfectPrediction) {
  TensorF logits(Shape{1, 3}, 0.0f);
  logits(0, 1) = 50.0f;
  const LossResult r = softmax_cross_entropy(logits, {1});
  EXPECT_LT(r.loss, 1e-4f);
  EXPECT_EQ(r.correct, 1);
}

TEST(Loss, GradientIsSoftmaxMinusOneHot) {
  TensorF logits(Shape{1, 2}, 0.0f);  // softmax = [0.5, 0.5]
  const LossResult r = softmax_cross_entropy(logits, {0});
  EXPECT_NEAR(r.grad_logits(0, 0), -0.5f, 1e-5f);
  EXPECT_NEAR(r.grad_logits(0, 1), 0.5f, 1e-5f);
}

TEST(Loss, NumericalGradientCheck) {
  Rng rng(6);
  TensorF logits = random_tensor(Shape{2, 5}, rng, -2, 2);
  const std::vector<int> labels{3, 1};
  const LossResult r = softmax_cross_entropy(logits, labels);
  const double eps = 1e-3;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    TensorF plus = logits, minus = logits;
    plus.at_flat(i) += static_cast<float>(eps);
    minus.at_flat(i) -= static_cast<float>(eps);
    const double numeric =
        (softmax_cross_entropy(plus, labels).loss -
         softmax_cross_entropy(minus, labels).loss) /
        (2 * eps);
    EXPECT_NEAR(r.grad_logits.at_flat(i), numeric, 1e-3);
  }
}

TEST(Loss, RejectsBadLabels) {
  TensorF logits(Shape{1, 3}, 0.0f);
  EXPECT_THROW(softmax_cross_entropy(logits, {5}), ContractViolation);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 1}), ContractViolation);
}

// ------------------------------------------------------------- optimizers

TEST(Optimizer, SgdDescendsQuadratic) {
  Param p("w", Shape{1});
  p.value.at_flat(0) = 5.0f;
  Sgd sgd({&p}, SgdConfig{0.1f, 0.0f, 0.0f});
  for (int i = 0; i < 100; ++i) {
    p.zero_grad();
    p.grad.at_flat(0) = p.value.at_flat(0);  // d/dw 0.5 w^2
    sgd.step();
  }
  EXPECT_NEAR(p.value.at_flat(0), 0.0f, 1e-3f);
}

TEST(Optimizer, MomentumAcceleratesDescent) {
  auto run = [](float momentum) {
    Param p("w", Shape{1});
    p.value.at_flat(0) = 5.0f;
    Sgd sgd({&p}, SgdConfig{0.01f, momentum, 0.0f});
    for (int i = 0; i < 50; ++i) {
      p.zero_grad();
      p.grad.at_flat(0) = p.value.at_flat(0);
      sgd.step();
    }
    return std::abs(p.value.at_flat(0));
  };
  EXPECT_LT(run(0.9f), run(0.0f));
}

TEST(Optimizer, AdamDescendsQuadratic) {
  Param p("w", Shape{1});
  p.value.at_flat(0) = 5.0f;
  Adam adam({&p}, AdamConfig{0.1f});
  for (int i = 0; i < 300; ++i) {
    p.zero_grad();
    p.grad.at_flat(0) = p.value.at_flat(0);
    adam.step();
  }
  EXPECT_NEAR(p.value.at_flat(0), 0.0f, 1e-2f);
}

TEST(Optimizer, WeightDecayShrinksWeights) {
  Param p("w", Shape{1});
  p.value.at_flat(0) = 1.0f;
  Sgd sgd({&p}, SgdConfig{0.1f, 0.0f, 0.5f});
  p.zero_grad();
  sgd.step();  // grad 0, decay pulls toward 0
  EXPECT_LT(p.value.at_flat(0), 1.0f);
}

// ---------------------------------------------------------------- network

TEST(Network, SummaryAndShapes) {
  Rng rng(7);
  Network net = rsnn::testing::small_random_net(rng);
  const auto shapes = net.layer_output_shapes();
  ASSERT_EQ(shapes.size(), 5u);
  EXPECT_EQ(shapes.back(), Shape({1, 4}));
  EXPECT_NE(net.summary().find("Conv2d"), std::string::npos);
}

TEST(Network, EndToEndGradientDescentReducesLoss) {
  Rng rng(8);
  Network net = rsnn::testing::small_random_net(rng);
  Sgd sgd(net.params(), SgdConfig{0.05f, 0.9f, 0.0f});

  // Fixed batch of 8 random images with arbitrary labels: the net should be
  // able to memorize it.
  const TensorF batch = random_tensor(Shape{8, 1, 10, 10}, rng, 0.0, 0.999);
  const std::vector<int> labels{0, 1, 2, 3, 0, 1, 2, 3};

  float first_loss = 0, last_loss = 0;
  for (int step = 0; step < 60; ++step) {
    net.zero_grads();
    const TensorF logits = net.forward(batch, true);
    const LossResult r = softmax_cross_entropy(logits, labels);
    net.backward(r.grad_logits);
    sgd.step();
    if (step == 0) first_loss = r.loss;
    last_loss = r.loss;
  }
  EXPECT_LT(last_loss, first_loss * 0.5f);
}

// -------------------------------------------------------------------- zoo

TEST(Zoo, LeNetShapes) {
  Network net = make_lenet5();
  const auto shapes = net.layer_output_shapes();
  EXPECT_EQ(shapes.back(), Shape({1, 10}));
  // 6C5 -> 28x28, P2 -> 14, 16C5 -> 10, P2 -> 5, 120C5 -> 1.
  EXPECT_EQ(shapes[0], Shape({1, 6, 28, 28}));
  EXPECT_EQ(shapes[2], Shape({1, 6, 14, 14}));
  EXPECT_EQ(shapes[5], Shape({1, 16, 5, 5}));
  EXPECT_EQ(shapes[6], Shape({1, 120, 1, 1}));
}

TEST(Zoo, FangCnnShapes) {
  Network net = make_fang_cnn();
  const auto shapes = net.layer_output_shapes();
  EXPECT_EQ(shapes.back(), Shape({1, 10}));
  EXPECT_EQ(shapes[0], Shape({1, 32, 26, 26}));
  EXPECT_EQ(shapes[5], Shape({1, 32, 5, 5}));
}

TEST(Zoo, JuCnnShapes) {
  Network net = make_ju_cnn();
  const auto shapes = net.layer_output_shapes();
  EXPECT_EQ(shapes.back(), Shape({1, 10}));
  EXPECT_EQ(shapes[5], Shape({1, 64, 4, 4}));
}

TEST(Zoo, Vgg11HasPaperParameterCount) {
  Network net = make_vgg11();
  // Paper Sec. IV-A: "28.5 million parameters". Weights dominate; biases add
  // a small remainder.
  const double params = static_cast<double>(net.num_params());
  EXPECT_NEAR(params / 1e6, 28.5, 0.2);
  const auto shapes = net.layer_output_shapes();
  EXPECT_EQ(shapes.back(), Shape({1, 100}));
}

TEST(Zoo, MakeModelByName) {
  EXPECT_NO_THROW(make_model("lenet5"));
  EXPECT_NO_THROW(make_model("tiny"));
  EXPECT_THROW(make_model("resnet50"), ContractViolation);
}

// ---------------------------------------------------------------- trainer

TEST(Trainer, LearnsSeparableToyProblem) {
  // Two classes: images bright in the top half vs the bottom half.
  Rng rng(10);
  std::vector<TensorF> images;
  std::vector<int> labels;
  for (int i = 0; i < 60; ++i) {
    TensorF img(Shape{1, 10, 10}, 0.05f);
    const int cls = i % 2;
    for (std::int64_t y = (cls == 0 ? 0 : 5); y < (cls == 0 ? 5 : 10); ++y)
      for (std::int64_t x = 0; x < 10; ++x)
        img(0, y, x) = 0.8f + 0.1f * static_cast<float>(rng.next_double());
    images.push_back(img);
    labels.push_back(cls);
  }

  Network net(Shape{1, 10, 10});
  net.add<Flatten>();
  net.add<Linear>(LinearConfig{100, 2});
  net.init_params(rng);

  Sgd sgd(net.params(), SgdConfig{0.1f, 0.9f, 0.0f});
  Trainer trainer(net, sgd, TrainConfig{8, 16, 1.0f, true, nullptr});
  const float acc = trainer.fit(images, labels, rng);
  EXPECT_GT(acc, 0.95f);

  const EvalResult eval = evaluate(net, images, labels);
  EXPECT_GT(eval.accuracy, 0.95f);
}

TEST(Trainer, MakeBatchAssemblesInOrder) {
  std::vector<TensorF> samples;
  for (int i = 0; i < 3; ++i)
    samples.push_back(TensorF(Shape{1, 2, 2}, static_cast<float>(i)));
  const std::vector<std::size_t> order{2, 0, 1};
  const TensorF batch = make_batch(samples, order, 0, 2);
  EXPECT_EQ(batch.shape(), Shape({2, 1, 2, 2}));
  EXPECT_FLOAT_EQ(batch(0, 0, 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(batch(1, 0, 0, 0), 0.0f);
}

// -------------------------------------------------------------- serialize

TEST(Serialize, RoundTripPreservesParams) {
  Rng rng(11);
  Network a = rsnn::testing::small_random_net(rng);
  Network b = rsnn::testing::small_random_net(rng);  // different weights

  const std::string path = ::testing::TempDir() + "/rsnn_params.bin";
  save_params(a, path);
  EXPECT_TRUE(is_param_file(path));
  load_params(b, path);

  const auto pa = a.params(), pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i)
    EXPECT_EQ(pa[i]->value, pb[i]->value) << pa[i]->name;
  std::remove(path.c_str());
}

TEST(Serialize, RejectsArchitectureMismatch) {
  Rng rng(12);
  Network a = rsnn::testing::small_random_net(rng);
  const std::string path = ::testing::TempDir() + "/rsnn_params2.bin";
  save_params(a, path);

  Network other(Shape{1, 8, 8});
  other.add<Flatten>();
  other.add<Linear>(LinearConfig{64, 2});
  other.init_params(rng);
  EXPECT_THROW(load_params(other, path), ContractViolation);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  Rng rng(13);
  Network net = rsnn::testing::small_random_net(rng);
  EXPECT_THROW(load_params(net, "/nonexistent/rsnn.bin"), ContractViolation);
  EXPECT_FALSE(is_param_file("/nonexistent/rsnn.bin"));
}

}  // namespace
}  // namespace rsnn::nn
