#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "data/idx_loader.hpp"
#include "data/image_io.hpp"
#include "data/synth_digits.hpp"
#include "data/synth_objects.hpp"

namespace rsnn::data {
namespace {

TEST(SynthDigits, DeterministicGivenSeed) {
  SynthDigitsConfig cfg;
  cfg.num_samples = 20;
  const Dataset a = make_synth_digits(cfg);
  const Dataset b = make_synth_digits(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.images[i], b.images[i]);
    EXPECT_EQ(a.labels[i], b.labels[i]);
  }
}

TEST(SynthDigits, DifferentSeedsDiffer) {
  SynthDigitsConfig a_cfg, b_cfg;
  a_cfg.num_samples = b_cfg.num_samples = 10;
  b_cfg.seed = 999;
  const Dataset a = make_synth_digits(a_cfg);
  const Dataset b = make_synth_digits(b_cfg);
  EXPECT_NE(a.images[0], b.images[0]);
}

TEST(SynthDigits, PixelRangeIsRadixEncodable) {
  SynthDigitsConfig cfg;
  cfg.num_samples = 50;
  const Dataset d = make_synth_digits(cfg);
  for (const auto& img : d.images) {
    EXPECT_EQ(img.shape(), Shape({1, 32, 32}));
    EXPECT_GE(img.min(), 0.0f);
    EXPECT_LT(img.max(), 1.0f);
  }
}

TEST(SynthDigits, BalancedClasses) {
  SynthDigitsConfig cfg;
  cfg.num_samples = 100;
  const Dataset d = make_synth_digits(cfg);
  const auto hist = class_histogram(d);
  for (const auto count : hist) EXPECT_EQ(count, 10u);
}

TEST(SynthDigits, DigitsAreVisuallyDistinct) {
  // Render each digit with no jitter; pairwise pixel distance must be
  // substantial, otherwise the classification task would be degenerate.
  Rng rng(1);
  std::vector<TensorF> digits;
  for (int d = 0; d < 10; ++d)
    digits.push_back(
        render_digit(d, 32, 0, 0, 1.0, 0.0, 0.4, 0.9, 0.0, rng));
  for (int a = 0; a < 10; ++a) {
    for (int b = a + 1; b < 10; ++b) {
      double dist = 0.0;
      for (std::int64_t i = 0; i < digits[a].numel(); ++i) {
        const double diff = digits[a].at_flat(i) - digits[b].at_flat(i);
        dist += diff * diff;
      }
      EXPECT_GT(dist, 1.0) << "digits " << a << " and " << b << " too similar";
    }
  }
}

TEST(SynthDigits, SamplesOfSameClassVary) {
  SynthDigitsConfig cfg;
  cfg.num_samples = 30;
  const Dataset d = make_synth_digits(cfg);
  // samples 0, 10, 20 are all digit 0 with different transforms.
  EXPECT_NE(d.images[0], d.images[10]);
  EXPECT_NE(d.images[10], d.images[20]);
}

TEST(SynthDigits, CustomCanvas) {
  SynthDigitsConfig cfg;
  cfg.canvas = 16;
  cfg.num_samples = 5;
  const Dataset d = make_synth_digits(cfg);
  EXPECT_EQ(d.sample_shape(), Shape({1, 16, 16}));
}

TEST(SynthObjects, ShapeAndRange) {
  SynthObjectsConfig cfg;
  cfg.num_samples = 50;
  cfg.num_classes = 10;
  const Dataset d = make_synth_objects(cfg);
  EXPECT_EQ(d.sample_shape(), Shape({3, 32, 32}));
  for (const auto& img : d.images) {
    EXPECT_GE(img.min(), 0.0f);
    EXPECT_LT(img.max(), 1.0f);
  }
}

TEST(SynthObjects, Deterministic) {
  SynthObjectsConfig cfg;
  cfg.num_samples = 8;
  const Dataset a = make_synth_objects(cfg);
  const Dataset b = make_synth_objects(cfg);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.images[i], b.images[i]);
}

TEST(SynthObjects, HundredClassesBalanced) {
  SynthObjectsConfig cfg;
  cfg.num_samples = 200;
  const Dataset d = make_synth_objects(cfg);
  EXPECT_EQ(d.num_classes, 100);
  const auto hist = class_histogram(d);
  for (const auto count : hist) EXPECT_EQ(count, 2u);
}

TEST(SynthObjects, ClassStylesDiffer) {
  SynthObjectsConfig cfg;
  cfg.num_samples = 100;
  cfg.noise_stddev = 0.0;
  const Dataset d = make_synth_objects(cfg);
  // Compare class 0 and class 1 prototypes.
  double dist = 0.0;
  for (std::int64_t i = 0; i < d.images[0].numel(); ++i) {
    const double diff = d.images[0].at_flat(i) - d.images[1].at_flat(i);
    dist += diff * diff;
  }
  EXPECT_GT(dist, 5.0);
}

TEST(Dataset, SplitFractions) {
  SynthDigitsConfig cfg;
  cfg.num_samples = 100;
  const Dataset d = make_synth_digits(cfg);
  const TrainTestSplit s = split(d, 0.8);
  EXPECT_EQ(s.train.size(), 80u);
  EXPECT_EQ(s.test.size(), 20u);
  EXPECT_EQ(s.train.num_classes, 10);
}

TEST(Dataset, TakeClamps) {
  SynthDigitsConfig cfg;
  cfg.num_samples = 10;
  const Dataset d = make_synth_digits(cfg);
  EXPECT_EQ(d.take(3).size(), 3u);
  EXPECT_EQ(d.take(100).size(), 10u);
}

TEST(Dataset, AppendChecksClassCount) {
  Dataset a, b;
  a.num_classes = 10;
  b.num_classes = 5;
  EXPECT_THROW(a.append(b), ContractViolation);
}

TEST(ImageIo, PgmHeaderAndSize) {
  TensorF image(Shape{1, 4, 6}, 0.5f);
  const std::string path = ::testing::TempDir() + "/img.pgm";
  write_pgm(image, path);
  std::ifstream is(path, std::ios::binary);
  std::string magic, dims;
  std::getline(is, magic);
  std::getline(is, dims);
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(dims, "6 4");
  is.seekg(0, std::ios::end);
  // header "P5\n6 4\n255\n" = 11 bytes + 24 pixels.
  EXPECT_EQ(static_cast<long>(is.tellg()), 11 + 24);
  std::remove(path.c_str());
}

TEST(ImageIo, PpmRoundTripPixelValues) {
  TensorF image(Shape{3, 2, 2}, 0.0f);
  image(0, 0, 0) = 0.999f;  // red corner
  const std::string path = ::testing::TempDir() + "/img.ppm";
  write_ppm(image, path);
  std::ifstream is(path, std::ios::binary);
  std::string line;
  std::getline(is, line);  // P6
  std::getline(is, line);  // dims
  std::getline(is, line);  // maxval
  unsigned char rgb[3];
  is.read(reinterpret_cast<char*>(rgb), 3);
  EXPECT_GT(static_cast<int>(rgb[0]), 250);
  EXPECT_EQ(static_cast<int>(rgb[1]), 0);
  std::remove(path.c_str());
}

TEST(ImageIo, RejectsWrongChannelCount) {
  TensorF rgb(Shape{3, 2, 2});
  TensorF gray(Shape{1, 2, 2});
  EXPECT_THROW(write_pgm(rgb, "/tmp/x.pgm"), ContractViolation);
  EXPECT_THROW(write_ppm(gray, "/tmp/x.ppm"), ContractViolation);
}

TEST(ImageIo, AsciiArtDimensions) {
  TensorF image(Shape{1, 3, 5}, 0.0f);
  image(0, 1, 2) = 0.95f;
  const std::string art = ascii_art(image);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 3);
  EXPECT_NE(art.find('@'), std::string::npos);
}

TEST(IdxLoader, MissingFilesReturnNullopt) {
  EXPECT_FALSE(load_mnist("/nonexistent_dir", true).has_value());
  EXPECT_FALSE(
      load_idx_pair("/no/file1", "/no/file2", 32).has_value());
}

TEST(IdxLoader, ParsesWellFormedFiles) {
  // Write a 2-image 3x3 IDX pair and read it back.
  const std::string img_path = ::testing::TempDir() + "/imgs.idx";
  const std::string lbl_path = ::testing::TempDir() + "/lbls.idx";
  {
    std::ofstream img(img_path, std::ios::binary);
    const unsigned char img_header[] = {0, 0, 8, 3, 0, 0, 0, 2,
                                        0, 0, 0, 3, 0, 0, 0, 3};
    img.write(reinterpret_cast<const char*>(img_header), sizeof(img_header));
    for (int i = 0; i < 18; ++i) {
      const unsigned char pixel = static_cast<unsigned char>(i * 14);
      img.write(reinterpret_cast<const char*>(&pixel), 1);
    }
    std::ofstream lbl(lbl_path, std::ios::binary);
    const unsigned char lbl_header[] = {0, 0, 8, 1, 0, 0, 0, 2};
    lbl.write(reinterpret_cast<const char*>(lbl_header), sizeof(lbl_header));
    const unsigned char labels[] = {7, 2};
    lbl.write(reinterpret_cast<const char*>(labels), 2);
  }
  const auto d = load_idx_pair(img_path, lbl_path, 5);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->size(), 2u);
  EXPECT_EQ(d->labels[0], 7);
  EXPECT_EQ(d->labels[1], 2);
  EXPECT_EQ(d->sample_shape(), Shape({1, 5, 5}));
  // Padding centers the 3x3 image: corner pixel (0,0) of the canvas is 0.
  EXPECT_FLOAT_EQ(d->images[0](0, 0, 0), 0.0f);
  // First image pixel lands at (1,1).
  EXPECT_NEAR(d->images[0](0, 1, 1), 0.0f, 1e-6f);
  EXPECT_GT(d->images[0](0, 1, 2), 0.0f);
  std::remove(img_path.c_str());
  std::remove(lbl_path.c_str());
}

}  // namespace
}  // namespace rsnn::data
