// The simulator fast path (hw/fast_path) against the golden stepped
// dataflow. The accounting contract is non-negotiable: logits, cycles,
// adder ops and memory traffic must be bit-identical to SimMode::kStepped
// for every layout policy x fusion x geometry combination — the fast path
// changes how the simulator iterates, never what it counts.
//
// Also covered here: the Arena bump allocator, the zero-allocation warm
// streaming property, and segment-scoped fast-path execution (a fused
// conv+pool pair split by a pipeline cut).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/alloc_hook.hpp"
#include "common/arena.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "engine/engine.hpp"
#include "engine/serving_pool.hpp"
#include "engine/stream.hpp"
#include "hw/accelerator.hpp"
#include "hw/fast_path.hpp"
#include "ir/layer_program.hpp"
#include "nn/zoo.hpp"
#include "quant/quantize.hpp"
#include "test_helpers.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define RSNN_SANITIZERS_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define RSNN_SANITIZERS_ACTIVE 1
#endif
#endif

namespace rsnn::hw {
namespace {

using rsnn::testing::random_image;

/// Full bit-identity check: totals, traffic, logits, and every per-layer
/// record.
void expect_bit_identical(const AccelRunResult& run,
                          const AccelRunResult& golden) {
  EXPECT_EQ(run.logits, golden.logits);
  EXPECT_EQ(run.predicted_class, golden.predicted_class);
  EXPECT_EQ(run.total_cycles, golden.total_cycles);
  EXPECT_EQ(run.total_adder_ops, golden.total_adder_ops);
  EXPECT_EQ(run.dram_bits, golden.dram_bits);
  EXPECT_EQ(run.traffic_total.act_read_bits, golden.traffic_total.act_read_bits);
  EXPECT_EQ(run.traffic_total.act_write_bits,
            golden.traffic_total.act_write_bits);
  EXPECT_EQ(run.traffic_total.weight_read_bits,
            golden.traffic_total.weight_read_bits);
  EXPECT_EQ(run.traffic_total.dram_bits, golden.traffic_total.dram_bits);
  ASSERT_EQ(run.layers.size(), golden.layers.size());
  for (std::size_t li = 0; li < run.layers.size(); ++li) {
    SCOPED_TRACE("layer " + std::to_string(li));
    EXPECT_EQ(run.layers[li].name, golden.layers[li].name);
    EXPECT_EQ(run.layers[li].cycles, golden.layers[li].cycles);
    EXPECT_EQ(run.layers[li].dram_cycles, golden.layers[li].dram_cycles);
    EXPECT_EQ(run.layers[li].adder_ops, golden.layers[li].adder_ops);
    EXPECT_EQ(run.layers[li].input_spikes, golden.layers[li].input_spikes);
    EXPECT_EQ(run.layers[li].traffic.act_read_bits,
              golden.layers[li].traffic.act_read_bits);
    EXPECT_EQ(run.layers[li].traffic.act_write_bits,
              golden.layers[li].traffic.act_write_bits);
    EXPECT_EQ(run.layers[li].traffic.weight_read_bits,
              golden.layers[li].traffic.weight_read_bits);
    EXPECT_EQ(run.layers[li].traffic.dram_bits,
              golden.layers[li].traffic.dram_bits);
  }
}

struct PlanVariant {
  LayoutPolicy layout;
  bool fuse;
  const char* label;
};

constexpr PlanVariant kPlanVariants[] = {
    {LayoutPolicy::kAuto, true, "auto_fused"},
    {LayoutPolicy::kAuto, false, "auto_unfused"},
    {LayoutPolicy::kForceChw, true, "chw_fused"},
    {LayoutPolicy::kForceChw, false, "chw_unfused"},
    {LayoutPolicy::kForceHwc, true, "hwc_fused"},
    {LayoutPolicy::kForceHwc, false, "hwc_unfused"},
};

// ------------------------------------------------------------------ Arena

TEST(Arena, BumpAllocatesAndConsolidatesOnReset) {
  common::Arena arena;
  // First round: everything overflows the (empty) primary chunk.
  std::int64_t* a = arena.alloc<std::int64_t>(100);
  std::int32_t* b = arena.alloc<std::int32_t>(7);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  a[99] = 42;
  b[6] = 7;
  const std::size_t demand = arena.round_bytes();
  EXPECT_GE(demand, 100 * sizeof(std::int64_t) + 7 * sizeof(std::int32_t));

  // Reset consolidates the round's demand into the primary chunk.
  arena.reset();
  EXPECT_GE(arena.capacity(), demand);
  EXPECT_EQ(arena.round_bytes(), 0u);

  // An identical round now bumps through the primary chunk; capacity stays.
  const std::size_t capacity = arena.capacity();
  std::int64_t* a2 = arena.alloc<std::int64_t>(100);
  arena.alloc<std::int32_t>(7);
  a2[0] = 1;
  EXPECT_EQ(arena.capacity(), capacity);
  EXPECT_EQ(arena.round_bytes(), demand);
  arena.reset();
  EXPECT_EQ(arena.capacity(), capacity);
}

TEST(Arena, BlocksAreMaxAligned) {
  common::Arena arena;
  for (int i = 0; i < 5; ++i) {
    const auto p = reinterpret_cast<std::uintptr_t>(arena.alloc<char>(3));
    EXPECT_EQ(p % alignof(std::max_align_t), 0u);
  }
}

// ------------------------------------- layout x fusion sweeps, LeNet T=4

TEST(FastPath, LeNetAllPlanVariantsBitIdenticalToStepped) {
  Rng rng(711);
  nn::Network lenet = nn::make_lenet5();
  lenet.init_params(rng);
  const quant::QuantizedNetwork qnet =
      quant::quantize(lenet, quant::QuantizeConfig{3, 4});
  const TensorI codes = quant::encode_activations(
      random_image(qnet.input_shape, rng), qnet.time_bits);

  // The stepped golden run (fast-path options do not affect kStepped).
  const Accelerator golden_accel(lenet_reference_config(), qnet);
  const AccelRunResult golden =
      golden_accel.run_codes(codes, SimMode::kStepped);
  ASSERT_FALSE(golden.logits.empty());

  for (const PlanVariant& variant : kPlanVariants) {
    SCOPED_TRACE(variant.label);
    AcceleratorConfig cfg = lenet_reference_config();
    cfg.fast_path.layout = variant.layout;
    cfg.fast_path.fuse_conv_pool = variant.fuse;
    const Accelerator accel(cfg, qnet);
    expect_bit_identical(accel.run_codes(codes, SimMode::kCycleAccurate),
                         golden);
  }
}

TEST(FastPath, DisabledFallsBackToStepped) {
  Rng rng(712);
  nn::Network net = rsnn::testing::small_random_net(rng);
  const quant::QuantizedNetwork qnet =
      quant::quantize(net, quant::QuantizeConfig{3, 4});
  AcceleratorConfig cfg;
  cfg.conv = ConvUnitGeometry{16, 3, 24};
  cfg.pool = PoolUnitGeometry{8, 2, 16};
  cfg.linear = LinearUnitGeometry{8, 24};
  cfg.fast_path.enable = false;
  const Accelerator accel(cfg, qnet);
  const TensorI codes = quant::encode_activations(
      random_image(qnet.input_shape, rng), qnet.time_bits);
  expect_bit_identical(accel.run_codes(codes, SimMode::kCycleAccurate),
                       accel.run_codes(codes, SimMode::kStepped));
}

// --------------------------------- geometry sweep: stride, padding, tiling

TEST(FastPath, StridePaddingTilingGeometriesMatchStepped) {
  const rsnn::testing::SweepConfig geometries[] = {
      {1, 4, 9, 3, 1, 0, 4},   // plain k3
      {2, 3, 9, 3, 2, 1, 3},   // stride 2 with padding
      {3, 5, 11, 5, 2, 2, 4},  // k5, stride 2, padding 2
      {2, 6, 12, 3, 1, 1, 5},  // padded, wide output (tiles with X=4)
  };
  int seed = 100;
  for (const auto& geometry : geometries) {
    SCOPED_TRACE("size=" + std::to_string(geometry.size) +
                 " k=" + std::to_string(geometry.kernel) +
                 " stride=" + std::to_string(geometry.stride) +
                 " pad=" + std::to_string(geometry.padding));
    Rng rng(seed++);
    nn::Network net = rsnn::testing::sweep_net(geometry, rng);
    const quant::QuantizedNetwork qnet = quant::quantize(
        net, quant::QuantizeConfig{3, geometry.time_bits});
    const TensorI codes = quant::encode_activations(
        random_image(qnet.input_shape, rng), qnet.time_bits);

    // array_columns = 4 forces output-row tiling on every geometry above.
    AcceleratorConfig cfg;
    cfg.conv = ConvUnitGeometry{4, 5, 24};
    cfg.linear = LinearUnitGeometry{8, 24};
    const Accelerator accel(cfg, qnet);
    const AccelRunResult golden = accel.run_codes(codes, SimMode::kStepped);

    for (const LayoutPolicy layout :
         {LayoutPolicy::kForceChw, LayoutPolicy::kForceHwc}) {
      SCOPED_TRACE(layout == LayoutPolicy::kForceChw ? "chw" : "hwc");
      AcceleratorConfig fast_cfg = cfg;
      fast_cfg.fast_path.layout = layout;
      const Accelerator fast_accel(fast_cfg, qnet);
      expect_bit_identical(
          fast_accel.run_codes(codes, SimMode::kCycleAccurate), golden);
    }
  }
}

// ----------------------------------------------- VGG-11 (DRAM streaming)

TEST(FastPath, Vgg11BothLayoutsBitIdenticalToStepped) {
  Rng rng(37);
  nn::Network vgg = nn::make_vgg11();
  vgg.init_params(rng);
  const quant::QuantizedNetwork qnet =
      quant::quantize(vgg, quant::QuantizeConfig{3, 3});
  const TensorI codes = quant::encode_activations(
      random_image(qnet.input_shape, rng), qnet.time_bits);

  const Accelerator golden_accel(vgg11_table3_config(), qnet);
  ASSERT_TRUE(golden_accel.uses_dram());
  const AccelRunResult golden =
      golden_accel.run_codes(codes, SimMode::kStepped);

  for (const LayoutPolicy layout :
       {LayoutPolicy::kForceChw, LayoutPolicy::kForceHwc}) {
    SCOPED_TRACE(layout == LayoutPolicy::kForceChw ? "chw" : "hwc");
    AcceleratorConfig cfg = vgg11_table3_config();
    cfg.fast_path.layout = layout;
    const Accelerator accel(cfg, qnet);
    expect_bit_identical(accel.run_codes(codes, SimMode::kCycleAccurate),
                         golden);
  }
}

// ------------------------------------- segment cut through a fused pair

TEST(FastPath, SegmentCutBetweenFusedConvPoolMatchesWholeProgram) {
  Rng rng(55);
  nn::Network net = rsnn::testing::small_random_net(rng);
  const quant::QuantizedNetwork qnet =
      quant::quantize(net, quant::QuantizeConfig{3, 4});
  AcceleratorConfig cfg;
  cfg.conv = ConvUnitGeometry{16, 3, 24};
  cfg.pool = PoolUnitGeometry{8, 2, 16};
  cfg.linear = LinearUnitGeometry{8, 24};
  const Accelerator accel(cfg, qnet);
  const ir::LayerProgram& program = accel.program();

  // The plan fuses the conv (op 0) with the pool (op 1); the cut at op 1
  // splits that pair, so segment [0, 1) must execute the conv unfused and
  // emit its own boundary codes.
  ASSERT_EQ(program.op(0).kind, ir::OpKind::kConv);
  ASSERT_TRUE(program.op(0).fuse_with_next);
  const TensorI codes = quant::encode_activations(
      random_image(qnet.input_shape, rng), qnet.time_bits);
  const AccelRunResult whole = accel.run_codes(codes, SimMode::kCycleAccurate);
  expect_bit_identical(whole, accel.run_codes(codes, SimMode::kStepped));

  Accelerator::WorkerState state = accel.make_worker_state();
  TensorI boundary;
  AccelRunResult merged = accel.run_codes_range(
      state, codes, 0, 1, SimMode::kCycleAccurate, &boundary);
  ASSERT_EQ(boundary.shape(), program.op(0).out_shape);
  merge_segment_result(merged,
                       accel.run_codes_range(state, boundary, 1,
                                             program.size(),
                                             SimMode::kCycleAccurate));
  finalize_run(merged, accel.config().cycle_ns());
  expect_bit_identical(merged, whole);
}

// ------------------------------------------------- zero-allocation warmth

TEST(FastPath, WarmStreamingInferenceAllocatesNothing) {
#ifdef RSNN_SANITIZERS_ACTIVE
  GTEST_SKIP() << "allocation counting is not meaningful under sanitizers";
#else
  Rng rng(91);
  nn::Network net = rsnn::testing::small_random_net(rng);
  const quant::QuantizedNetwork qnet =
      quant::quantize(net, quant::QuantizeConfig{3, 4});
  AcceleratorConfig cfg;
  cfg.conv = ConvUnitGeometry{16, 3, 24};
  cfg.pool = PoolUnitGeometry{8, 2, 16};
  cfg.linear = LinearUnitGeometry{8, 24};
  const ir::LayerProgram program = ir::lower(qnet, cfg);

  engine::StreamingExecutor stream(program, engine::EngineKind::kCycleAccurate,
                                   /*num_workers=*/1);
  std::vector<TensorI> batch(
      4, quant::encode_activations(random_image(qnet.input_shape, rng),
                                   qnet.time_bits));
  std::vector<AccelRunResult> results;
  // Two warm batches: the first builds the prepared weights and sizes every
  // scratch buffer; the second consolidates the arena's primary chunk.
  stream.run_stream_into(batch, results);
  stream.run_stream_into(batch, results);
  const AccelRunResult warm = results.at(0);

  const std::uint64_t before = common::allocation_count();
  // Guard against a vacuous pass: the setup above allocates plenty, so a
  // zero counter means the counting hook did not link into this binary.
  ASSERT_GT(before, 0u) << "allocation hook not linked";
  stream.run_stream_into(batch, results);
  const std::uint64_t after = common::allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "warm fast-path streaming inference must not touch the heap";
  expect_bit_identical(results.at(0), warm);
#endif
}

// ------------------------------------------------------- SIMD dispatch

TEST(Simd, KernelsMatchScalarOnRandomVectors) {
  const common::simd::Kernels& best = common::simd::kernels();
  const common::simd::Kernels& scalar = common::simd::scalar_kernels();
  Rng rng(321);
  // Odd lengths cover every remainder path of the vector kernels.
  for (const std::int64_t n : {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 31, 70}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    std::vector<std::int64_t> acc_a(n), acc_b(n), src(n);
    std::vector<std::int32_t> w32(n);
    for (std::int64_t i = 0; i < n; ++i) {
      acc_a[i] = acc_b[i] = rng.next_int(-1000, 1000);
      src[i] = rng.next_int(0, 255);  // activation-code range
      w32[i] = static_cast<std::int32_t>(rng.next_int(-4, 3));
    }
    const std::int64_t w = rng.next_int(-4, 3);
    best.axpy_code_i64(acc_a.data(), src.data(), w, n);
    scalar.axpy_code_i64(acc_b.data(), src.data(), w, n);
    EXPECT_EQ(acc_a, acc_b);
    best.axpy_w32(acc_a.data(), w32.data(), 200, n);
    scalar.axpy_w32(acc_b.data(), w32.data(), 200, n);
    EXPECT_EQ(acc_a, acc_b);
    best.add_i64(acc_a.data(), src.data(), n);
    scalar.add_i64(acc_b.data(), src.data(), n);
    EXPECT_EQ(acc_a, acc_b);
  }
}

TEST(Simd, ScopedForceScalarSwitchesDispatch) {
  ASSERT_STREQ(common::simd::scalar_kernels().isa, "scalar");
  const bool was_forced = common::simd::force_scalar_active();
  {
    common::simd::ScopedForceScalar force(true);
    EXPECT_TRUE(common::simd::force_scalar_active());
    EXPECT_STREQ(common::simd::active_isa(), "scalar");
  }
  EXPECT_EQ(common::simd::force_scalar_active(), was_forced);
}

TEST(FastPath, SimdAndScalarDispatchBitIdentical) {
  Rng rng(911);
  nn::Network lenet = nn::make_lenet5();
  lenet.init_params(rng);
  const quant::QuantizedNetwork qnet =
      quant::quantize(lenet, quant::QuantizeConfig{3, 4});
  const TensorI codes = quant::encode_activations(
      random_image(qnet.input_shape, rng), qnet.time_bits);

  for (const PlanVariant& variant : kPlanVariants) {
    SCOPED_TRACE(variant.label);
    AcceleratorConfig cfg = lenet_reference_config();
    cfg.fast_path.layout = variant.layout;
    cfg.fast_path.fuse_conv_pool = variant.fuse;
    const Accelerator accel(cfg, qnet);
    const AccelRunResult vec = accel.run_codes(codes, SimMode::kCycleAccurate);
    common::simd::ScopedForceScalar force(true);
    expect_bit_identical(accel.run_codes(codes, SimMode::kCycleAccurate), vec);
  }
}

// --------------------------------------------------- batched fast path

/// Distinct random images, encoded for `qnet`.
std::vector<TensorI> random_code_batch(const quant::QuantizedNetwork& qnet,
                                       std::size_t count, Rng& rng) {
  std::vector<TensorI> codes;
  codes.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    codes.push_back(quant::encode_activations(
        random_image(qnet.input_shape, rng), qnet.time_bits));
  return codes;
}

/// Batched runs over every prefix size in `batch_sizes` must match the
/// sequential per-image runs record for record.
void expect_batched_matches_sequential(
    const Accelerator& accel, const std::vector<TensorI>& codes,
    std::initializer_list<std::size_t> batch_sizes, SimMode mode) {
  Accelerator::WorkerState state = accel.make_worker_state();
  std::vector<AccelRunResult> sequential(codes.size());
  for (std::size_t i = 0; i < codes.size(); ++i)
    accel.run_codes_into(state, codes[i], sequential[i], mode);

  for (const std::size_t batch : batch_sizes) {
    SCOPED_TRACE("batch=" + std::to_string(batch));
    ASSERT_LE(batch, codes.size());
    std::vector<AccelRunResult> results(batch);
    accel.run_codes_batched_into(state, codes.data(), batch, results.data(),
                                 mode);
    for (std::size_t b = 0; b < batch; ++b) {
      SCOPED_TRACE("image " + std::to_string(b));
      expect_bit_identical(results[b], sequential[b]);
    }
  }
}

TEST(FastPathBatched, LeNetAllPlanVariantsMatchSequential) {
  Rng rng(812);
  nn::Network lenet = nn::make_lenet5();
  lenet.init_params(rng);
  const quant::QuantizedNetwork qnet =
      quant::quantize(lenet, quant::QuantizeConfig{3, 4});
  const std::vector<TensorI> codes = random_code_batch(qnet, 8, rng);

  for (const PlanVariant& variant : kPlanVariants) {
    SCOPED_TRACE(variant.label);
    AcceleratorConfig cfg = lenet_reference_config();
    cfg.fast_path.layout = variant.layout;
    cfg.fast_path.fuse_conv_pool = variant.fuse;
    const Accelerator accel(cfg, qnet);
    expect_batched_matches_sequential(accel, codes, {1, 3, 8},
                                      SimMode::kCycleAccurate);
  }
}

TEST(FastPathBatched, LeNetAnalyticModeMatchesSequential) {
  Rng rng(813);
  nn::Network lenet = nn::make_lenet5();
  lenet.init_params(rng);
  const quant::QuantizedNetwork qnet =
      quant::quantize(lenet, quant::QuantizeConfig{3, 4});
  const std::vector<TensorI> codes = random_code_batch(qnet, 3, rng);
  const Accelerator accel(lenet_reference_config(), qnet);
  expect_batched_matches_sequential(accel, codes, {1, 3}, SimMode::kAnalytic);
}

TEST(FastPathBatched, Vgg11MatchesSequential) {
  Rng rng(814);
  nn::Network vgg = nn::make_vgg11();
  vgg.init_params(rng);
  const quant::QuantizedNetwork qnet =
      quant::quantize(vgg, quant::QuantizeConfig{3, 3});
  const std::vector<TensorI> codes = random_code_batch(qnet, 8, rng);
  const Accelerator accel(vgg11_table3_config(), qnet);
  expect_batched_matches_sequential(accel, codes, {1, 3, 8},
                                    SimMode::kCycleAccurate);
}

TEST(FastPathBatched, SimdAndScalarDispatchBitIdentical) {
  Rng rng(815);
  nn::Network lenet = nn::make_lenet5();
  lenet.init_params(rng);
  const quant::QuantizedNetwork qnet =
      quant::quantize(lenet, quant::QuantizeConfig{3, 4});
  const std::vector<TensorI> codes = random_code_batch(qnet, 3, rng);
  const Accelerator accel(lenet_reference_config(), qnet);
  Accelerator::WorkerState state = accel.make_worker_state();

  std::vector<AccelRunResult> vec(codes.size());
  accel.run_codes_batched_into(state, codes.data(), codes.size(), vec.data());
  common::simd::ScopedForceScalar force(true);
  std::vector<AccelRunResult> scalar(codes.size());
  accel.run_codes_batched_into(state, codes.data(), codes.size(),
                               scalar.data());
  for (std::size_t b = 0; b < codes.size(); ++b) {
    SCOPED_TRACE("image " + std::to_string(b));
    expect_bit_identical(scalar[b], vec[b]);
  }
}

TEST(FastPathBatched, SteppedModeFallsBackToSequentialLoop) {
  Rng rng(816);
  nn::Network net = rsnn::testing::small_random_net(rng);
  const quant::QuantizedNetwork qnet =
      quant::quantize(net, quant::QuantizeConfig{3, 4});
  AcceleratorConfig cfg;
  cfg.conv = ConvUnitGeometry{16, 3, 24};
  cfg.pool = PoolUnitGeometry{8, 2, 16};
  cfg.linear = LinearUnitGeometry{8, 24};
  const Accelerator accel(cfg, qnet);
  const std::vector<TensorI> codes = random_code_batch(qnet, 3, rng);
  expect_batched_matches_sequential(accel, codes, {3}, SimMode::kStepped);
}

TEST(FastPathBatched, WarmBatchedInferenceAllocatesNothing) {
#ifdef RSNN_SANITIZERS_ACTIVE
  GTEST_SKIP() << "allocation counting is not meaningful under sanitizers";
#else
  Rng rng(817);
  nn::Network net = rsnn::testing::small_random_net(rng);
  const quant::QuantizedNetwork qnet =
      quant::quantize(net, quant::QuantizeConfig{3, 4});
  AcceleratorConfig cfg;
  cfg.conv = ConvUnitGeometry{16, 3, 24};
  cfg.pool = PoolUnitGeometry{8, 2, 16};
  cfg.linear = LinearUnitGeometry{8, 24};
  const Accelerator accel(cfg, qnet);
  const std::vector<TensorI> codes = random_code_batch(qnet, 8, rng);
  Accelerator::WorkerState state = accel.make_worker_state();
  std::vector<AccelRunResult> results(codes.size());

  // Two warm batches: the first builds the prepared weights and sizes every
  // scratch buffer; the second consolidates the arena's primary chunk.
  accel.run_codes_batched_into(state, codes.data(), codes.size(),
                               results.data());
  accel.run_codes_batched_into(state, codes.data(), codes.size(),
                               results.data());
  const AccelRunResult warm = results.at(0);

  const std::uint64_t before = common::allocation_count();
  ASSERT_GT(before, 0u) << "allocation hook not linked";
  accel.run_codes_batched_into(state, codes.data(), codes.size(),
                               results.data());
  const std::uint64_t after = common::allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "warm batched fast-path inference must not touch the heap";
  expect_bit_identical(results.at(0), warm);
#endif
}

// ------------------------------------------------ TaskPool fork/join

TEST(TaskPool, RunsEveryTaskOnItsOwnSlot) {
  common::TaskPool pool(4);
  EXPECT_EQ(pool.slots(), 4u);
  EXPECT_NE(&pool.arena(0), &pool.arena(1));

  std::atomic<int> ran{0};
  int hits[4] = {0, 0, 0, 0};
  auto session = pool.acquire();
  pool.run(4, [&](std::size_t slot) {
    hits[slot] += 1;
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran.load(), 4);
  for (int slot = 0; slot < 4; ++slot) EXPECT_EQ(hits[slot], 1);

  // Task 0 runs on the calling thread (static slot binding).
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id task0;
  pool.run(2, [&](std::size_t slot) {
    if (slot == 0) task0 = std::this_thread::get_id();
  });
  EXPECT_EQ(task0, caller);
}

TEST(TaskPool, WorkerExceptionsPropagateAndPoolStaysUsable) {
  common::TaskPool pool(3);
  auto session = pool.acquire();
  EXPECT_THROW(pool.run(3,
                        [&](std::size_t slot) {
                          if (slot == 2) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
  // The fork/join still works after a failed round.
  std::atomic<int> ran{0};
  pool.run(3, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 3);
}

// ------------------------------------ intra-op parallel batched fast path

/// Batched parallel runs must be bit-identical, image for image, to the
/// sequential batched kernel — same logits, cycles, adder ops and traffic.
/// The thread count partitions the batch into slices; it must never change
/// what is counted.
void expect_parallel_matches_sequential(const AcceleratorConfig& base_cfg,
                                        const quant::QuantizedNetwork& qnet,
                                        const std::vector<TensorI>& codes,
                                        std::initializer_list<int> threads) {
  AcceleratorConfig seq_cfg = base_cfg;
  seq_cfg.fast_path.threads = 1;
  const Accelerator seq(seq_cfg, qnet);
  Accelerator::WorkerState seq_state = seq.make_worker_state();
  std::vector<AccelRunResult> golden(codes.size());
  seq.run_codes_batched_into(seq_state, codes.data(), codes.size(),
                             golden.data());

  for (const int t : threads) {
    SCOPED_TRACE("threads=" + std::to_string(t));
    AcceleratorConfig cfg = base_cfg;
    cfg.fast_path.threads = t;
    const Accelerator par(cfg, qnet);
    Accelerator::WorkerState state = par.make_worker_state();
    std::vector<AccelRunResult> results(codes.size());
    par.run_codes_batched_into(state, codes.data(), codes.size(),
                               results.data());
    for (std::size_t b = 0; b < codes.size(); ++b) {
      SCOPED_TRACE("image " + std::to_string(b));
      expect_bit_identical(results[b], golden[b]);
    }
  }
}

TEST(FastPathParallel, LeNetThreadSweepAllPlanVariantsMatchSequential) {
  Rng rng(901);
  nn::Network lenet = nn::make_lenet5();
  lenet.init_params(rng);
  const quant::QuantizedNetwork qnet =
      quant::quantize(lenet, quant::QuantizeConfig{3, 4});
  const std::vector<TensorI> codes = random_code_batch(qnet, 8, rng);
  const int hc =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));

  for (const PlanVariant& variant : kPlanVariants) {
    SCOPED_TRACE(variant.label);
    AcceleratorConfig cfg = lenet_reference_config();
    cfg.fast_path.layout = variant.layout;
    cfg.fast_path.fuse_conv_pool = variant.fuse;
    // threads=5 leaves a remainder: the batch of 8 splits 2+2+2+1+1, so
    // the uneven-slice bookkeeping is exercised too.
    expect_parallel_matches_sequential(cfg, qnet, codes, {1, 2, 5, hc});
  }
}

TEST(FastPathParallel, LeNetScalarDispatchMatchesSequential) {
  Rng rng(902);
  nn::Network lenet = nn::make_lenet5();
  lenet.init_params(rng);
  const quant::QuantizedNetwork qnet =
      quant::quantize(lenet, quant::QuantizeConfig{3, 4});
  const std::vector<TensorI> codes = random_code_batch(qnet, 6, rng);
  common::simd::ScopedForceScalar force(true);
  for (const PlanVariant& variant : kPlanVariants) {
    SCOPED_TRACE(variant.label);
    AcceleratorConfig cfg = lenet_reference_config();
    cfg.fast_path.layout = variant.layout;
    cfg.fast_path.fuse_conv_pool = variant.fuse;
    expect_parallel_matches_sequential(cfg, qnet, codes, {2, 3});
  }
}

TEST(FastPathParallel, Vgg11ThreadSweepMatchesSequential) {
  Rng rng(903);
  nn::Network vgg = nn::make_vgg11();
  vgg.init_params(rng);
  const quant::QuantizedNetwork qnet =
      quant::quantize(vgg, quant::QuantizeConfig{3, 3});
  const std::vector<TensorI> codes = random_code_batch(qnet, 6, rng);
  const int hc =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  expect_parallel_matches_sequential(vgg11_table3_config(), qnet, codes,
                                     {2, 4, hc});
}

TEST(FastPathParallel, WarmParallelBatchedInferenceAllocatesNothing) {
#ifdef RSNN_SANITIZERS_ACTIVE
  GTEST_SKIP() << "allocation counting is not meaningful under sanitizers";
#else
  Rng rng(904);
  nn::Network net = rsnn::testing::small_random_net(rng);
  const quant::QuantizedNetwork qnet =
      quant::quantize(net, quant::QuantizeConfig{3, 4});
  AcceleratorConfig cfg;
  cfg.conv = ConvUnitGeometry{16, 3, 24};
  cfg.pool = PoolUnitGeometry{8, 2, 16};
  cfg.linear = LinearUnitGeometry{8, 24};
  cfg.fast_path.threads = 4;
  const Accelerator accel(cfg, qnet);
  const std::vector<TensorI> codes = random_code_batch(qnet, 8, rng);
  Accelerator::WorkerState state = accel.make_worker_state();
  std::vector<AccelRunResult> results(codes.size());

  // Two warm batches: the first spins up the shared task pool, builds the
  // prepared weights and sizes every slot arena; the second consolidates
  // the arenas' primary chunks.
  accel.run_codes_batched_into(state, codes.data(), codes.size(),
                               results.data());
  accel.run_codes_batched_into(state, codes.data(), codes.size(),
                               results.data());
  const AccelRunResult warm = results.at(0);

  const std::uint64_t before = common::allocation_count();
  ASSERT_GT(before, 0u) << "allocation hook not linked";
  accel.run_codes_batched_into(state, codes.data(), codes.size(),
                               results.data());
  const std::uint64_t after = common::allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "warm parallel batched fast-path inference must not touch the heap";
  expect_bit_identical(results.at(0), warm);
#endif
}

// -------------------------------------- replica-shared prepared weights

TEST(FastPathShared, AcceleratorsOverSameNetworkShareOnePack) {
  Rng rng(905);
  nn::Network lenet = nn::make_lenet5();
  lenet.init_params(rng);
  const quant::QuantizedNetwork qnet =
      quant::quantize(lenet, quant::QuantizeConfig{3, 4});
  const AcceleratorConfig cfg = lenet_reference_config();
  const Accelerator a(cfg, qnet);
  const Accelerator b(cfg, qnet);

  const std::uint64_t before = fast_prepared_build_count();
  const std::shared_ptr<const FastPrepared> pa = a.fast_prepared_shared();
  const std::shared_ptr<const FastPrepared> pb = b.fast_prepared_shared();
  ASSERT_NE(pa, nullptr);
  EXPECT_EQ(pa.get(), pb.get()) << "replicas must share one prepared pack";
  EXPECT_EQ(fast_prepared_build_count() - before, 1u)
      << "two accelerators over the same program must build exactly once";

  // A different fast-path plan is a different pack: sharing keys on the
  // prepared content, not just the network.
  AcceleratorConfig other = cfg;
  other.fast_path.layout = cfg.fast_path.layout == LayoutPolicy::kForceChw
                               ? LayoutPolicy::kForceHwc
                               : LayoutPolicy::kForceChw;
  const Accelerator c(other, qnet);
  EXPECT_NE(c.fast_prepared_shared().get(), pa.get());
}

TEST(FastPathShared, ServingReplicasReuseTheSharedPack) {
  Rng rng(906);
  nn::Network lenet = nn::make_lenet5();
  lenet.init_params(rng);
  const quant::QuantizedNetwork qnet =
      quant::quantize(lenet, quant::QuantizeConfig{3, 4});
  const ir::LayerProgram program = ir::lower(qnet, lenet_reference_config());
  const std::vector<TensorI> codes = random_code_batch(qnet, 8, rng);

  // Build the pack once up front (and hold it live through `warm`): every
  // replica the pool spins up must then attach to it without building.
  auto warm =
      engine::make_engine(engine::EngineKind::kCycleAccurate, program);
  AccelRunResult tmp;
  warm->run_codes_into(codes[0], tmp);
  const std::uint64_t before = fast_prepared_build_count();

  engine::ServingPoolOptions opts;
  opts.replicas = 2;
  opts.workers_per_replica = 1;
  {
    engine::ServingPool pool(program, engine::EngineKind::kCycleAccurate,
                             opts);
    const auto run = pool.run_batch(codes);
    ASSERT_EQ(run.ok_count(), codes.size());
    // Shared prepared weights never blur the results: every served answer
    // matches the warm monolithic engine bit for bit.
    for (std::size_t i = 0; i < codes.size(); ++i) {
      SCOPED_TRACE("request " + std::to_string(i));
      warm->run_codes_into(codes[i], tmp);
      EXPECT_EQ(run.results[i].result.logits, tmp.logits);
    }
  }
  EXPECT_EQ(fast_prepared_build_count(), before)
      << "serving replicas must reuse the shared prepared pack, not rebuild";
}

// ------------------------------------------------ stream chunk option

TEST(Stream, ChunkOptionKeepsResultsIdenticalAndValidates) {
  Rng rng(907);
  nn::Network net = rsnn::testing::small_random_net(rng);
  const quant::QuantizedNetwork qnet =
      quant::quantize(net, quant::QuantizeConfig{3, 4});
  AcceleratorConfig cfg;
  cfg.conv = ConvUnitGeometry{16, 3, 24};
  cfg.pool = PoolUnitGeometry{8, 2, 16};
  cfg.linear = LinearUnitGeometry{8, 24};
  const ir::LayerProgram program = ir::lower(qnet, cfg);
  const std::vector<TensorI> codes = random_code_batch(qnet, 10, rng);

  engine::StreamingExecutor chunk8(program,
                                   engine::EngineKind::kCycleAccurate,
                                   /*num_workers=*/2);
  engine::StreamingExecutor chunk3(
      program, engine::EngineKind::kCycleAccurate, /*num_workers=*/2,
      /*injector=*/nullptr, /*replica_index=*/0, engine::StreamOptions{3});
  const auto a = chunk8.run_stream(codes);
  const auto b = chunk3.run_stream(codes);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("image " + std::to_string(i));
    expect_bit_identical(a[i], b[i]);
  }

  EXPECT_THROW(engine::StreamingExecutor(
                   program, engine::EngineKind::kCycleAccurate,
                   /*num_workers=*/1, /*injector=*/nullptr,
                   /*replica_index=*/0, engine::StreamOptions{0}),
               ContractViolation);
}

// ------------------------------------------------------- mode plumbing

TEST(FastPath, SteppedEngineIsRegisteredEverywhere) {
  EXPECT_EQ(engine::parse_engine("stepped"), engine::EngineKind::kStepped);
  EXPECT_STREQ(engine::engine_name(engine::EngineKind::kStepped), "stepped");
  bool found = false;
  for (const engine::EngineKind kind : engine::all_engines())
    found = found || kind == engine::EngineKind::kStepped;
  EXPECT_TRUE(found);
}

TEST(FastPath, AutoLayoutPlansPerOp) {
  Rng rng(2024);
  nn::Network lenet = nn::make_lenet5();
  lenet.init_params(rng);
  const quant::QuantizedNetwork qnet =
      quant::quantize(lenet, quant::QuantizeConfig{3, 4});
  const ir::LayerProgram program = ir::lower(qnet, lenet_reference_config());
  for (const ir::LayerOp& op : program.ops()) {
    if (op.kind != ir::OpKind::kConv) {
      EXPECT_FALSE(op.fuse_with_next);  // only conv ops lead a fused pair
      continue;
    }
    const DataLayout expected = op.conv->in_channels >= 8 ? DataLayout::kHwc
                                                          : DataLayout::kChw;
    EXPECT_EQ(op.fast_layout, expected);
  }
}

}  // namespace
}  // namespace rsnn::hw
