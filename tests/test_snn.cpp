#include <gtest/gtest.h>

#include "encoding/radix.hpp"
#include "quant/quantize.hpp"
#include "snn/radix_snn.hpp"
#include "snn/rate_snn.hpp"
#include "test_helpers.hpp"

namespace rsnn::snn {
namespace {

using rsnn::testing::random_image;
using rsnn::testing::small_random_net;
using rsnn::testing::SweepConfig;
using rsnn::testing::sweep_net;

// ----------------------- invariant 1: radix SNN == quantized integer model

TEST(RadixSnn, MatchesQuantizedNetworkLogitsExactly) {
  Rng rng(1);
  nn::Network net = small_random_net(rng);
  const quant::QuantizedNetwork qnet = quantize(net, quant::QuantizeConfig{3, 4});
  const RadixSnn snn(qnet);

  for (int trial = 0; trial < 20; ++trial) {
    const TensorF image = random_image(Shape{1, 10, 10}, rng);
    const TensorI codes = quant::encode_activations(image, 4);
    const auto expected = qnet.forward(codes);
    const RadixSnnResult got = snn.run_image(image);
    EXPECT_EQ(got.logits, expected) << "trial " << trial;
  }
}

struct SweepCase {
  SweepConfig cfg;
  const char* label;
};

class RadixSnnSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RadixSnnSweep, BitExactAcrossGeometries) {
  const SweepConfig& cfg = GetParam().cfg;
  Rng rng(7 + cfg.kernel * 31 + cfg.stride * 17 + cfg.padding * 5 +
          cfg.time_bits);
  nn::Network net = sweep_net(cfg, rng);
  const quant::QuantizedNetwork qnet =
      quantize(net, quant::QuantizeConfig{3, cfg.time_bits});
  const RadixSnn snn(qnet);

  for (int trial = 0; trial < 5; ++trial) {
    const TensorF image = random_image(Shape{cfg.cin, cfg.size, cfg.size}, rng);
    const TensorI codes = quant::encode_activations(image, cfg.time_bits);
    EXPECT_EQ(snn.run_image(image).logits, qnet.forward(codes))
        << GetParam().label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, RadixSnnSweep,
    ::testing::Values(
        SweepCase{{1, 2, 8, 3, 1, 0, 3}, "k3s1p0"},
        SweepCase{{2, 3, 9, 3, 1, 1, 3}, "k3s1p1"},
        SweepCase{{2, 3, 9, 3, 2, 0, 3}, "k3s2p0"},
        SweepCase{{1, 4, 11, 5, 1, 0, 4}, "k5s1p0"},
        SweepCase{{2, 2, 11, 5, 2, 2, 4}, "k5s2p2"},
        SweepCase{{3, 3, 8, 1, 1, 0, 3}, "k1s1p0"},
        SweepCase{{1, 2, 8, 3, 1, 0, 1}, "T1"},
        SweepCase{{1, 2, 8, 3, 1, 0, 6}, "T6"},
        SweepCase{{1, 2, 8, 3, 1, 0, 8}, "T8"}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return info.param.label;
    });

TEST(RadixSnn, RecordsLayerSpikes) {
  Rng rng(2);
  nn::Network net = small_random_net(rng);
  const quant::QuantizedNetwork qnet = quantize(net, quant::QuantizeConfig{3, 4});
  const RadixSnn snn(qnet);
  const TensorF image = random_image(Shape{1, 10, 10}, rng);
  const RadixSnnResult result = snn.run_image(image, true);
  // conv, pool, flatten produce recorded trains (final layer emits logits).
  EXPECT_EQ(result.layer_spikes.size(), 3u);
  EXPECT_GT(result.total_synaptic_ops, 0);
  EXPECT_GT(result.total_input_spikes, 0);
}

TEST(RadixSnn, RejectsWrongTimeSteps) {
  Rng rng(3);
  nn::Network net = small_random_net(rng);
  const quant::QuantizedNetwork qnet = quantize(net, quant::QuantizeConfig{3, 4});
  const RadixSnn snn(qnet);
  const TensorF image = random_image(Shape{1, 10, 10}, rng);
  const auto train = encoding::radix_encode(image, 3);  // wrong T
  EXPECT_THROW(snn.run(train), ContractViolation);
}

TEST(RadixSnn, SpikeCountDrivesSynapticOps) {
  // All-zero input: no spikes, no synaptic ops, logits = biases only.
  Rng rng(4);
  nn::Network net = small_random_net(rng);
  const quant::QuantizedNetwork qnet = quantize(net, quant::QuantizeConfig{3, 4});
  const RadixSnn snn(qnet);
  const TensorF image(Shape{1, 10, 10}, 0.0f);
  const RadixSnnResult result = snn.run_image(image);
  EXPECT_EQ(result.total_input_spikes, 0);
}

// --------------------------------------------------------------- rate SNN

TEST(RateSnn, ConvergesToAnnWithManySteps) {
  Rng rng(5);
  nn::Network net = small_random_net(rng);
  const RateSnn snn_long(net, RateSnnConfig{256, 1.0f});

  int agree = 0;
  const int trials = 15;
  for (int i = 0; i < trials; ++i) {
    const TensorF image = random_image(Shape{1, 10, 10}, rng);
    std::vector<std::int64_t> batch_dims{1};
    for (const auto d : image.shape().dims()) batch_dims.push_back(d);
    const TensorF logits = net.forward(image.reshaped(Shape{batch_dims}), false);
    if (snn_long.run_image(image).predicted_class ==
        static_cast<int>(logits.argmax()))
      ++agree;
  }
  EXPECT_GE(agree, trials - 3);
}

TEST(RateSnn, ShortTrainsAreLessFaithful) {
  // Mean logits error vs the float ANN should shrink as T grows — the
  // motivation for radix encoding (paper Sec. I).
  Rng rng(6);
  nn::Network net = small_random_net(rng);
  auto mean_err = [&](int T) {
    const RateSnn snn(net, RateSnnConfig{T, 1.0f});
    double err = 0.0;
    Rng local(7);
    for (int i = 0; i < 10; ++i) {
      const TensorF image = random_image(Shape{1, 10, 10}, local);
      std::vector<std::int64_t> batch_dims{1};
      for (const auto d : image.shape().dims()) batch_dims.push_back(d);
      const TensorF logits =
          net.forward(image.reshaped(Shape{batch_dims}), false);
      const RateSnnResult r = snn.run_image(image);
      for (std::size_t c = 0; c < r.logits.size(); ++c)
        err += std::abs(r.logits[c] -
                        logits(std::int64_t{0}, static_cast<std::int64_t>(c)));
    }
    return err;
  };
  EXPECT_GT(mean_err(2), mean_err(64));
}

TEST(RateSnn, CountsSpikes) {
  Rng rng(8);
  nn::Network net = small_random_net(rng);
  const RateSnn snn(net, RateSnnConfig{8, 1.0f});
  const TensorF image = random_image(Shape{1, 10, 10}, rng);
  EXPECT_GT(snn.run_image(image).total_spikes, 0);
}

TEST(RateSnn, RejectsBadConfig) {
  Rng rng(9);
  nn::Network net = small_random_net(rng);
  EXPECT_THROW(RateSnn(net, RateSnnConfig{0, 1.0f}), ContractViolation);
  EXPECT_THROW(RateSnn(net, RateSnnConfig{8, 0.0f}), ContractViolation);
}

}  // namespace
}  // namespace rsnn::snn
