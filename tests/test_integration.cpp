// End-to-end integration: train an ANN on a synthetic dataset, convert it,
// and verify the whole chain ANN -> quantized model -> radix SNN ->
// cycle-accurate accelerator stays consistent and accurate.
#include <gtest/gtest.h>

#include "compiler/compile.hpp"
#include "data/synth_digits.hpp"
#include "hw/accelerator.hpp"
#include "hw/power_model.hpp"
#include "hw/resource_model.hpp"
#include "nn/activation.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/optimizer.hpp"
#include "nn/pool2d.hpp"
#include "nn/trainer.hpp"
#include "quant/quantize.hpp"
#include "snn/radix_snn.hpp"

namespace rsnn {
namespace {

/// Small conv net for 16x16 synthetic digits (fast enough for CI), trained
/// quantization-aware on both activations (T-bit grid) and weights (3-bit
/// power-of-two grid) so conversion is nearly lossless.
nn::Network make_mini_digit_net(int qat_bits) {
  const int weight_bits = 3;
  nn::Network net(Shape{1, 16, 16});
  net.add<nn::Conv2d>(
      nn::Conv2dConfig{1, 6, 3, 1, 0, true, weight_bits});  // -> 14x14
  net.add<nn::ClippedReLU>(nn::ClippedReLUConfig{1.0f, qat_bits});
  net.add<nn::Pool2d>(nn::Pool2dConfig{2});  // -> 7x7
  net.add<nn::Flatten>();
  net.add<nn::Linear>(nn::LinearConfig{6 * 7 * 7, 10, true, weight_bits});
  return net;
}

struct TrainedFixture {
  nn::Network net = make_mini_digit_net(4);
  data::Dataset train, test;
  float ann_accuracy = 0.0f;

  TrainedFixture() {
    data::SynthDigitsConfig cfg;
    cfg.canvas = 16;
    cfg.num_samples = 1000;
    cfg.noise_stddev = 0.03;
    cfg.max_shift = 1.5;  // proportional to the smaller canvas
    const data::Dataset all = make_synth_digits(cfg);
    auto parts = data::split(all, 0.8);
    train = std::move(parts.train);
    test = std::move(parts.test);

    Rng rng(2024);
    net.init_params(rng);
    nn::Adam adam(net.params(), nn::AdamConfig{0.03f});
    nn::Trainer trainer(net, adam,
                        nn::TrainConfig{14, 32, 1.0f, true, nullptr});
    trainer.fit(train.images, train.labels, rng);
    ann_accuracy = nn::evaluate(net, test.images, test.labels).accuracy;
  }
};

TrainedFixture& fixture() {
  static TrainedFixture f;
  return f;
}

TEST(Integration, AnnLearnsSyntheticDigits) {
  EXPECT_GT(fixture().ann_accuracy, 0.85f)
      << "QAT ANN should learn the synthetic digit task";
}

TEST(Integration, QuantizedModelTracksAnnAccuracy) {
  auto& f = fixture();
  const auto qnet = quant::quantize(f.net, quant::QuantizeConfig{3, 4});
  const auto result =
      quant::evaluate_quantized(qnet, f.test.images, f.test.labels);
  EXPECT_GT(result.accuracy, f.ann_accuracy - 0.10)
      << "3-bit weights + 4-bit activations should cost only a few points";
}

TEST(Integration, SnnAndQuantizedModelAgreeOnEverySample) {
  auto& f = fixture();
  const auto qnet = quant::quantize(f.net, quant::QuantizeConfig{3, 4});
  const snn::RadixSnn radix_snn(qnet);
  for (std::size_t i = 0; i < 40; ++i) {
    const TensorI codes = quant::encode_activations(f.test.images[i], 4);
    EXPECT_EQ(radix_snn.run_image(f.test.images[i]).logits,
              qnet.forward(codes))
        << "sample " << i;
  }
}

TEST(Integration, AcceleratorMatchesSnnOnEverySample) {
  auto& f = fixture();
  const auto qnet = quant::quantize(f.net, quant::QuantizeConfig{3, 4});
  compiler::CompileOptions options;
  options.num_conv_units = 2;
  const auto design = compiler::compile(qnet, options);
  hw::Accelerator accel(design.config, qnet);
  const snn::RadixSnn radix_snn(qnet);

  for (std::size_t i = 0; i < 15; ++i) {
    const auto hw_run = accel.run_image(f.test.images[i]);
    const auto snn_run = radix_snn.run_image(f.test.images[i]);
    EXPECT_EQ(hw_run.logits, snn_run.logits) << "sample " << i;
  }
}

TEST(Integration, AcceleratorAccuracyEqualsQuantizedAccuracy) {
  auto& f = fixture();
  const auto qnet = quant::quantize(f.net, quant::QuantizeConfig{3, 4});
  compiler::CompileOptions options;
  options.num_conv_units = 4;
  const auto design = compiler::compile(qnet, options);
  hw::Accelerator accel(design.config, qnet);

  int hw_correct = 0, q_correct = 0;
  const std::size_t n = 40;
  for (std::size_t i = 0; i < n; ++i) {
    const TensorI codes = quant::encode_activations(f.test.images[i], 4);
    // Analytic mode is cheap and bit-identical by invariants 1/2/4.
    if (accel.run_codes(codes, hw::SimMode::kAnalytic).predicted_class ==
        f.test.labels[i])
      ++hw_correct;
    if (qnet.classify(codes) == f.test.labels[i]) ++q_correct;
  }
  EXPECT_EQ(hw_correct, q_correct);
}

TEST(Integration, FullReportPipelineProducesSaneNumbers) {
  auto& f = fixture();
  const auto qnet = quant::quantize(f.net, quant::QuantizeConfig{3, 4});
  compiler::CompileOptions options;
  options.num_conv_units = 2;
  options.clock_mhz = 100.0;
  const auto design = compiler::compile(qnet, options);
  hw::Accelerator accel(design.config, qnet);

  const auto run = accel.run_image(f.test.images[0]);
  EXPECT_GT(run.total_cycles, 0);
  EXPECT_GT(run.latency_us, 0.0);
  EXPECT_LT(run.latency_us, 100000.0);

  const auto resources = hw::estimate_resources(accel);
  EXPECT_GT(resources.luts, 1000);
  EXPECT_GT(resources.bram_bits, 0);

  const auto power =
      hw::estimate_power(design.config, resources, run, accel.uses_dram());
  EXPECT_GT(power.total_w(), 2.0);
  EXPECT_LT(power.total_w(), 8.0);
}

TEST(Integration, TimeStepSweepImprovesAccuracyMonotonically) {
  // Table I's qualitative claim: more time steps -> equal or better accuracy
  // (up to saturation). Allow small non-monotonicity from quantization noise.
  auto& f = fixture();
  double prev = 0.0;
  for (const int T : {2, 4, 6}) {
    const auto qnet = quant::quantize(f.net, quant::QuantizeConfig{3, T});
    const auto result = quant::evaluate_quantized(
        qnet, f.test.images, f.test.labels);
    EXPECT_GT(result.accuracy, prev - 0.05) << "T=" << T;
    prev = result.accuracy;
  }
  EXPECT_GT(prev, 0.75);
}

}  // namespace
}  // namespace rsnn
