// Shared fixtures for the test suite: small random networks and inputs.
#pragma once

#include "common/rng.hpp"
#include "nn/activation.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/network.hpp"
#include "nn/pool2d.hpp"
#include "quant/quantize.hpp"
#include "tensor/tensor.hpp"

namespace rsnn::testing {

/// Random float image in [0, 1) with the given CHW shape.
inline TensorF random_image(const Shape& shape, Rng& rng) {
  TensorF image(shape);
  for (std::int64_t i = 0; i < image.numel(); ++i)
    image.at_flat(i) = static_cast<float>(rng.next_double() * 0.999);
  return image;
}

/// Random batched tensor with values in [lo, hi).
inline TensorF random_tensor(const Shape& shape, Rng& rng, double lo = -1.0,
                             double hi = 1.0) {
  TensorF t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i)
    t.at_flat(i) = static_cast<float>(rng.next_double(lo, hi));
  return t;
}

/// A small conv->pool->fc network with randomized weights, convertible to a
/// quantized radix SNN. Input [1, 10, 10], four classes.
inline nn::Network small_random_net(Rng& rng) {
  nn::Network net(Shape{1, 10, 10});
  net.add<nn::Conv2d>(nn::Conv2dConfig{1, 3, 3, 1, 0});
  net.add<nn::ClippedReLU>(nn::ClippedReLUConfig{1.0f, 0});
  net.add<nn::Pool2d>(nn::Pool2dConfig{2});
  net.add<nn::Flatten>();
  net.add<nn::Linear>(nn::LinearConfig{3 * 4 * 4, 4});
  net.init_params(rng);
  // Shrink weights into a range where 3-bit quantization is meaningful and
  // biases stay small.
  for (nn::Param* p : net.params())
    for (std::int64_t i = 0; i < p->value.numel(); ++i)
      p->value.at_flat(i) *= 0.5f;
  return net;
}

/// A conv network with configurable kernel/stride/padding for sweeps.
/// Input [cin, size, size], one conv layer then (optionally) flatten+linear.
struct SweepConfig {
  std::int64_t cin = 2;
  std::int64_t cout = 3;
  std::int64_t size = 9;
  std::int64_t kernel = 3;
  std::int64_t stride = 1;
  std::int64_t padding = 0;
  int time_bits = 3;
};

inline nn::Network sweep_net(const SweepConfig& cfg, Rng& rng) {
  nn::Network net(Shape{cfg.cin, cfg.size, cfg.size});
  net.add<nn::Conv2d>(nn::Conv2dConfig{cfg.cin, cfg.cout, cfg.kernel,
                                       cfg.stride, cfg.padding});
  net.add<nn::ClippedReLU>(nn::ClippedReLUConfig{1.0f, 0});
  const std::int64_t o =
      (cfg.size + 2 * cfg.padding - cfg.kernel) / cfg.stride + 1;
  net.add<nn::Flatten>();
  net.add<nn::Linear>(nn::LinearConfig{cfg.cout * o * o, 5});
  net.init_params(rng);
  for (nn::Param* p : net.params())
    for (std::int64_t i = 0; i < p->value.numel(); ++i)
      p->value.at_flat(i) *= 0.5f;
  return net;
}

}  // namespace rsnn::testing
