// LayerProgram lowering: typed ops, shapes, group phasing, weight placement
// and buffer sizing for the paper's two workloads (LeNet-5 and VGG-11,
// including the DRAM-streaming case).
#include <gtest/gtest.h>

#include <cstring>

#include "common/bits.hpp"
#include "hw/accelerator.hpp"
#include "ir/layer_program.hpp"
#include "nn/zoo.hpp"
#include "quant/quantize.hpp"
#include "test_helpers.hpp"

namespace rsnn::ir {
namespace {

quant::QuantizedNetwork quantized_lenet(int T) {
  Rng rng(31415);
  nn::Network lenet = nn::make_lenet5();
  lenet.init_params(rng);
  return quant::quantize(lenet, quant::QuantizeConfig{3, T});
}

TEST(LayerProgram, OpKindNamesAreCanonical) {
  EXPECT_STREQ(op_kind_name(OpKind::kConv), "conv");
  EXPECT_STREQ(op_kind_name(OpKind::kPool), "pool");
  EXPECT_STREQ(op_kind_name(OpKind::kLinear), "linear");
  EXPECT_STREQ(op_kind_name(OpKind::kFlatten), "flatten");
}

TEST(LayerProgram, FunctionalLoweringOfLeNet) {
  const auto qnet = quantized_lenet(4);
  const LayerProgram program = lower(qnet);

  ASSERT_EQ(program.size(), qnet.layers.size());
  EXPECT_FALSE(program.has_hw_annotations());
  EXPECT_EQ(&program.network(), &qnet);

  // LeNet-5 on 32x32: conv(1->6,k5) pool conv(6->16,k5) pool
  // conv(16->120,k5 -> 1x1) flatten fc(120->84) fc(84->10, raw).
  const OpKind expected_kinds[] = {OpKind::kConv,   OpKind::kPool,
                                   OpKind::kConv,   OpKind::kPool,
                                   OpKind::kConv,   OpKind::kFlatten,
                                   OpKind::kLinear, OpKind::kLinear};
  const Shape expected_shapes[] = {
      Shape{6, 28, 28}, Shape{6, 14, 14}, Shape{16, 10, 10}, Shape{16, 5, 5},
      Shape{120, 1, 1}, Shape{120},       Shape{84},         Shape{10}};
  ASSERT_EQ(program.size(), 8u);
  for (std::size_t li = 0; li < program.size(); ++li) {
    const LayerOp& op = program.op(li);
    EXPECT_EQ(op.kind, expected_kinds[li]) << "op " << li;
    EXPECT_EQ(op.out_shape, expected_shapes[li]) << "op " << li;
    EXPECT_EQ(op.layer_index, static_cast<int>(li));
    // Exactly the matching typed pointer is set.
    EXPECT_EQ(op.conv != nullptr, op.kind == OpKind::kConv);
    EXPECT_EQ(op.pool != nullptr, op.kind == OpKind::kPool);
    EXPECT_EQ(op.linear != nullptr, op.kind == OpKind::kLinear);
    // Ops after the flatten live in the 1-D buffer pair.
    EXPECT_EQ(op.is_1d, li >= 5) << "op " << li;
  }
  // Input shapes chain through output shapes.
  EXPECT_EQ(program.op(0).in_shape, qnet.input_shape);
  for (std::size_t li = 1; li < program.size(); ++li)
    EXPECT_EQ(program.op(li).in_shape, program.op(li - 1).out_shape);

  // Only the final layer is raw.
  for (std::size_t li = 0; li + 1 < program.size(); ++li)
    EXPECT_TRUE(program.op(li).requantize) << "op " << li;
  EXPECT_FALSE(program.ops().back().requantize);

  // Parameter footprints: weights at 3 bits, biases at T + 3 + 16 bits.
  const std::int64_t bias_bits = 4 + 3 + 16;
  EXPECT_EQ(program.op(0).param_bits, 6 * 1 * 5 * 5 * 3 + 6 * bias_bits);
  EXPECT_EQ(program.op(6).param_bits, 120 * 84 * 3 + 84 * bias_bits);
  EXPECT_EQ(program.op(1).param_bits, 0);  // pool has no parameters
  EXPECT_EQ(program.op(5).param_bits, 0);  // flatten has no parameters
}

TEST(LayerProgram, HardwareLoweringOfLeNetReferenceDesign) {
  const auto qnet = quantized_lenet(4);
  const hw::AcceleratorConfig cfg = hw::lenet_reference_config();
  const LayerProgram program = lower(qnet, cfg);

  ASSERT_TRUE(program.has_hw_annotations());
  EXPECT_FALSE(program.uses_dram());
  EXPECT_GT(program.predicted_total_cycles(), 0);

  // Group phasing on the paper's design point ((X,Y)=(30,5), 2 conv units,
  // pool (14,2)): conv1 is 28 wide -> share 1, ceil(6 / 2) = 3 groups;
  // conv2 is 10 wide -> share 3, ceil(16 / 6) = 3 groups. The single
  // pooling unit fits one 14-wide channel (share 1) and two 5-wide
  // channels (share 2).
  const LayerOp& conv1 = program.op(0);
  EXPECT_EQ(conv1.latency.channels_per_unit, 1);
  EXPECT_EQ(conv1.latency.groups, 3);
  EXPECT_EQ(conv1.latency.tiles, 1);  // X >= widest row avoids tiling
  EXPECT_EQ(conv1.contending_units, 2);
  EXPECT_EQ(conv1.unit, "conv_units[k=5]");

  const LayerOp& conv2 = program.op(2);
  EXPECT_EQ(conv2.latency.channels_per_unit, 3);
  EXPECT_EQ(conv2.latency.groups, 3);

  const LayerOp& pool1 = program.op(1);
  EXPECT_EQ(pool1.latency.channels_per_unit, 1);
  EXPECT_EQ(pool1.latency.groups, 6);
  const LayerOp& pool2 = program.op(3);
  EXPECT_EQ(pool2.latency.channels_per_unit, 2);
  EXPECT_EQ(pool2.latency.groups, 8);

  // Everything fits the default BRAM budget -> on-chip placement.
  for (const LayerOp& op : program.ops())
    EXPECT_EQ(op.placement, hw::WeightPlacement::kOnChip)
        << "op " << op.layer_index;

  // Buffer plan: the 2-D pair must hold the largest pre-flatten feature
  // map (conv1's 6x28x28 at T bits); the 1-D pair the flattened 120 codes.
  EXPECT_EQ(program.buffer_plan().buffer2d_bits_each, 6 * 28 * 28 * 4);
  EXPECT_EQ(program.buffer_plan().buffer1d_bits_each, 120 * 4);

  // The program's totals are the accelerator's analytic prediction.
  hw::Accelerator accel(program);
  EXPECT_EQ(program.predicted_total_cycles(), accel.predict_total_cycles());
}

TEST(LayerProgram, VggLoweringAndDramStreaming) {
  Rng rng(2718);
  nn::Network vgg = nn::make_vgg11();
  vgg.init_params(rng);
  const auto qnet = quant::quantize(vgg, quant::QuantizeConfig{3, 6});

  // VGG-11 on 3x32x32: 8 conv + 5 pool + flatten + 3 fc = 17 ops ending in
  // Shape{100} class scores.
  const LayerProgram functional = lower(qnet);
  ASSERT_EQ(functional.size(), 17u);
  EXPECT_EQ(functional.ops().back().kind, OpKind::kLinear);
  EXPECT_EQ(functional.ops().back().out_shape, Shape{100});
  EXPECT_EQ(functional.op(13).kind, OpKind::kFlatten);
  EXPECT_EQ(functional.op(13).out_shape, Shape{512});

  // The paper's VGG design point: 8 conv units, tight BRAM -> every
  // parameterized layer streams from DRAM; pool/flatten stay "on chip"
  // (they have no parameters to place).
  hw::AcceleratorConfig cfg = hw::vgg11_table3_config();
  cfg.memory.weight_bram_bits = std::int64_t{4} * 1024 * 1024 * 8;
  const LayerProgram program = lower(qnet, cfg);
  EXPECT_TRUE(program.uses_dram());
  for (const LayerOp& op : program.ops()) {
    const bool has_params = op.param_bits > 0;
    EXPECT_EQ(op.placement == hw::WeightPlacement::kDram, has_params)
        << "op " << op.layer_index;
    if (op.kind == OpKind::kConv || op.kind == OpKind::kLinear) {
      EXPECT_GT(op.latency.dram_cycles, 0) << "op " << op.layer_index;
      EXPECT_EQ(op.latency.traffic.dram_bits, op.param_bits)
          << "op " << op.layer_index;
    }
  }
}

TEST(LayerProgram, ScanGeometryFindsUnitRequirements) {
  const auto qnet = quantized_lenet(4);
  const GeometryRequirements req = scan_geometry(qnet);
  EXPECT_TRUE(req.has_conv);
  EXPECT_TRUE(req.has_pool);
  EXPECT_EQ(req.max_conv_kernel, 5);
  EXPECT_EQ(req.max_conv_out_width, 28);
  EXPECT_EQ(req.max_pool_kernel, 2);
  EXPECT_EQ(req.max_pool_out_width, 14);
}

TEST(LayerProgram, RejectsUnmappableNetwork) {
  const auto qnet = quantized_lenet(4);
  hw::AcceleratorConfig cfg = hw::lenet_reference_config();
  cfg.conv.kernel_rows = 3;  // LeNet's k=5 kernels cannot fit Y=3 units
  EXPECT_THROW(lower(qnet, cfg), ContractViolation);
}

TEST(LayerProgram, ExactAdderOpsCountsBorderSpikesExactly) {
  // A single spike in the corner of a 5x5 input under a 3x3 valid conv
  // participates in exactly one window; a center spike in all nine.
  quant::QConv2d conv;
  conv.in_channels = 1;
  conv.out_channels = 2;
  conv.kernel = 3;
  conv.weight = TensorI(Shape{2, 1, 3, 3}, 1);
  conv.bias = TensorI64(Shape{2});
  quant::QuantizedNetwork qnet;
  qnet.time_bits = 1;
  qnet.weight_bits = 3;
  qnet.input_shape = Shape{1, 5, 5};
  qnet.layers.emplace_back(conv);
  const LayerProgram program = lower(qnet);
  const LayerOp& op = program.op(0);

  TensorI64 codes(Shape{1, 5, 5}, std::int64_t{0});
  codes(0, 0, 0) = 1;  // corner: 1 window x 2 output channels
  EXPECT_EQ(exact_adder_ops(op, codes), 2);
  codes(0, 0, 0) = 0;
  codes(0, 2, 2) = 1;  // center: 9 windows x 2 output channels
  EXPECT_EQ(exact_adder_ops(op, codes), 18);
  codes(0, 2, 2) = 3;  // two spike bits at the center (T >= 2 codes)
  EXPECT_EQ(exact_adder_ops(op, codes), 36);
}

TEST(LayerProgram, LoweringIsStableAcrossCalls) {
  // Two lowerings of the same network against the same config must agree in
  // every annotation (the compiler relies on this determinism).
  const auto qnet = quantized_lenet(3);
  const hw::AcceleratorConfig cfg = hw::lenet_reference_config();
  const LayerProgram a = lower(qnet, cfg);
  const LayerProgram b = lower(qnet, cfg);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.predicted_total_cycles(), b.predicted_total_cycles());
  for (std::size_t li = 0; li < a.size(); ++li) {
    EXPECT_EQ(a.op(li).kind, b.op(li).kind);
    EXPECT_EQ(a.op(li).placement, b.op(li).placement);
    EXPECT_EQ(a.op(li).latency.total_cycles, b.op(li).latency.total_cycles);
    EXPECT_EQ(a.op(li).latency.groups, b.op(li).latency.groups);
    EXPECT_EQ(a.op(li).param_bits, b.op(li).param_bits);
  }
}

}  // namespace
}  // namespace rsnn::ir
