#include <gtest/gtest.h>

#include "encoding/radix.hpp"
#include "hw/accelerator.hpp"
#include "hw/conv_unit.hpp"
#include "hw/latency_model.hpp"
#include "hw/linear_unit.hpp"
#include "hw/pingpong.hpp"
#include "hw/pool_unit.hpp"
#include "hw/power_model.hpp"
#include "hw/report.hpp"
#include "hw/resource_model.hpp"
#include "hw/weight_memory.hpp"
#include "nn/zoo.hpp"
#include "quant/quantize.hpp"
#include "test_helpers.hpp"

namespace rsnn::hw {
namespace {

using rsnn::testing::random_image;
using rsnn::testing::small_random_net;
using rsnn::testing::SweepConfig;
using rsnn::testing::sweep_net;

AcceleratorConfig small_config(int units = 2) {
  AcceleratorConfig cfg;
  cfg.clock_mhz = 100.0;
  cfg.num_conv_units = units;
  cfg.conv = ConvUnitGeometry{12, 5, 24};
  cfg.pool = PoolUnitGeometry{8, 2, 16};
  cfg.linear = LinearUnitGeometry{4, 24};
  return cfg;
}

// ------------------------------- invariant 2: conv unit is bit-true to ref

struct ConvCase {
  SweepConfig cfg;
  const char* label;
};

class ConvUnitSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvUnitSweep, MatchesQuantizedConvolution) {
  const SweepConfig& sc = GetParam().cfg;
  Rng rng(101 + sc.kernel * 7 + sc.stride * 3 + sc.padding);
  nn::Network net = sweep_net(sc, rng);
  const quant::QuantizedNetwork qnet =
      quantize(net, quant::QuantizeConfig{3, sc.time_bits});
  const auto& conv = std::get<quant::QConv2d>(qnet.layers[0]);

  const TensorF image = random_image(Shape{sc.cin, sc.size, sc.size}, rng);
  const TensorI codes = quant::encode_activations(image, sc.time_bits);
  const auto input = encoding::radix_encode_codes(codes, sc.time_bits);

  // Reference: quantized network layer 0 output.
  std::vector<TensorI64> traces;
  qnet.forward_traced(codes, &traces);
  const TensorI64& expected = traces[0];

  ConvUnit unit(ConvUnitGeometry{32, 5, 24}, TimingParams{});
  TensorI64 out(expected.shape());
  // Process all channels one slice at a time.
  const std::int64_t ow = expected.dim(2);
  const std::int64_t share = std::clamp<std::int64_t>(32 / ow, std::int64_t{1},
                                                      conv.out_channels);
  for (std::int64_t base = 0; base < conv.out_channels; base += share) {
    const std::int64_t end = std::min(base + share, conv.out_channels);
    unit.run_layer_slice(conv, input, base, end, sc.time_bits, 1, out);
  }
  EXPECT_EQ(out, expected) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvUnitSweep,
    ::testing::Values(ConvCase{{1, 2, 8, 3, 1, 0, 3}, "k3s1p0"},
                      ConvCase{{2, 3, 9, 3, 1, 1, 3}, "k3s1p1"},
                      ConvCase{{2, 3, 9, 3, 2, 0, 3}, "k3s2p0"},
                      ConvCase{{2, 3, 10, 3, 2, 1, 4}, "k3s2p1"},
                      ConvCase{{1, 4, 11, 5, 1, 0, 4}, "k5s1p0"},
                      ConvCase{{2, 2, 11, 5, 2, 2, 4}, "k5s2p2"},
                      ConvCase{{3, 3, 8, 1, 1, 0, 3}, "k1s1p0"},
                      ConvCase{{1, 2, 8, 3, 1, 0, 1}, "T1"},
                      ConvCase{{1, 2, 8, 3, 1, 0, 7}, "T7"}),
    [](const ::testing::TestParamInfo<ConvCase>& info) {
      return info.param.label;
    });

TEST(ConvUnit, TilingMatchesReference) {
  // Output row wider than the array forces column tiling.
  SweepConfig sc{1, 2, 16, 3, 1, 0, 3};  // ow = 14
  Rng rng(11);
  nn::Network net = sweep_net(sc, rng);
  const quant::QuantizedNetwork qnet =
      quantize(net, quant::QuantizeConfig{3, 3});
  const auto& conv = std::get<quant::QConv2d>(qnet.layers[0]);

  const TensorF image = random_image(Shape{1, 16, 16}, rng);
  const TensorI codes = quant::encode_activations(image, 3);
  const auto input = encoding::radix_encode_codes(codes, 3);
  std::vector<TensorI64> traces;
  qnet.forward_traced(codes, &traces);

  ConvUnit unit(ConvUnitGeometry{6, 3, 24}, TimingParams{});  // X=6 < ow=14
  TensorI64 out(traces[0].shape());
  for (std::int64_t oc = 0; oc < conv.out_channels; ++oc)
    unit.run_layer_slice(conv, input, oc, oc + 1, 3, 1, out);
  EXPECT_EQ(out, traces[0]);
}

TEST(ConvUnit, RejectsOversizedKernel) {
  ConvUnit unit(ConvUnitGeometry{8, 3, 24}, TimingParams{});
  quant::QConv2d conv;
  conv.in_channels = conv.out_channels = 1;
  conv.kernel = 5;
  conv.weight = TensorI(Shape{1, 1, 5, 5});
  conv.bias = TensorI64(Shape{1});
  encoding::SpikeTrain input(Shape{1, 8, 8}, 3);
  TensorI64 out(Shape{1, 4, 4});
  EXPECT_THROW(unit.run_layer_slice(conv, input, 0, 1, 3, 1, out),
               ContractViolation);
}

// --------------------------------------------------------------- pool unit

TEST(PoolUnit, MatchesQuantizedPooling) {
  Rng rng(21);
  nn::Network net = small_random_net(rng);
  const quant::QuantizedNetwork qnet = quantize(net, quant::QuantizeConfig{3, 4});
  const auto& pool = std::get<quant::QPool2d>(qnet.layers[1]);

  const TensorF image = random_image(Shape{1, 10, 10}, rng);
  const TensorI codes = quant::encode_activations(image, 4);
  std::vector<TensorI64> traces;
  qnet.forward_traced(codes, &traces);

  // Build the pool input spike train from the conv layer output.
  const auto conv_out = traces[0].cast<std::int32_t>();
  const auto input = encoding::radix_encode_codes(conv_out, 4);

  PoolUnit unit(PoolUnitGeometry{8, 2, 16}, TimingParams{});
  TensorI64 out(traces[1].shape());
  const std::int64_t channels = conv_out.dim(0);
  const std::int64_t share = std::clamp<std::int64_t>(
      8 / out.dim(2), std::int64_t{1}, channels);
  for (std::int64_t base = 0; base < channels; base += share) {
    const std::int64_t end = std::min(base + share, channels);
    unit.run_layer_slice(pool, input, base, end, 4, out);
  }
  EXPECT_EQ(out, traces[1]);
}

// ------------------------------------------------------------- linear unit

TEST(LinearUnit, MatchesQuantizedLinear) {
  Rng rng(31);
  nn::Network net = small_random_net(rng);
  const quant::QuantizedNetwork qnet = quantize(net, quant::QuantizeConfig{3, 4});
  const auto& fc = std::get<quant::QLinear>(qnet.layers[3]);

  const TensorF image = random_image(Shape{1, 10, 10}, rng);
  const TensorI codes = quant::encode_activations(image, 4);
  std::vector<TensorI64> traces;
  const auto logits = qnet.forward_traced(codes, &traces);

  const auto fc_input = traces[2].cast<std::int32_t>();
  const auto input = encoding::radix_encode_codes(fc_input, 4);

  LinearUnit unit(LinearUnitGeometry{4, 24}, TimingParams{});
  TensorI64 out(Shape{fc.out_features});
  unit.run_layer(fc, input, 4, out);
  for (std::int64_t o = 0; o < out.numel(); ++o)
    EXPECT_EQ(out.at_flat(o), logits[static_cast<std::size_t>(o)]);
}

TEST(LinearUnit, CycleCountIsLaneGroupedFetches) {
  quant::QLinear fc;
  fc.in_features = 10;
  fc.out_features = 6;
  fc.weight = TensorI(Shape{6, 10});
  fc.bias = TensorI64(Shape{6});
  fc.requantize = false;
  encoding::SpikeTrain input(Shape{10}, 3);
  LinearUnit unit(LinearUnitGeometry{4, 24}, TimingParams{});
  TensorI64 out(Shape{6});
  const LinearRunResult r = unit.run_layer(fc, input, 3, out);
  // ceil(6/4) = 2 lane groups * 10 inputs * 3 steps.
  EXPECT_EQ(r.cycles, 60);
}

// ------------------ invariant 2 + 3: accelerator output and unit invariance

TEST(Accelerator, CycleAccurateMatchesQuantizedNetwork) {
  Rng rng(41);
  nn::Network net = small_random_net(rng);
  const quant::QuantizedNetwork qnet = quantize(net, quant::QuantizeConfig{3, 4});
  Accelerator accel(small_config(), qnet);

  for (int trial = 0; trial < 10; ++trial) {
    const TensorF image = random_image(Shape{1, 10, 10}, rng);
    const TensorI codes = quant::encode_activations(image, 4);
    const AccelRunResult run = accel.run_codes(codes);
    EXPECT_EQ(run.logits, qnet.forward(codes)) << "trial " << trial;
  }
}

class UnitCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(UnitCountSweep, ClassificationUnaffectedByUnitCount) {
  // Paper Sec. IV-C: "The classification result is unaffected by the number
  // of convolution units as the operations are identical."
  Rng rng(51);
  nn::Network net = small_random_net(rng);
  const quant::QuantizedNetwork qnet = quantize(net, quant::QuantizeConfig{3, 4});

  Accelerator reference(small_config(1), qnet);
  Accelerator accel(small_config(GetParam()), qnet);
  for (int trial = 0; trial < 5; ++trial) {
    const TensorF image = random_image(Shape{1, 10, 10}, rng);
    const TensorI codes = quant::encode_activations(image, 4);
    EXPECT_EQ(accel.run_codes(codes).logits, reference.run_codes(codes).logits);
  }
}

INSTANTIATE_TEST_SUITE_P(Units, UnitCountSweep, ::testing::Values(1, 2, 4, 8));

TEST(Accelerator, MoreUnitsNeverSlower) {
  Rng rng(61);
  nn::Network net = small_random_net(rng);
  const quant::QuantizedNetwork qnet = quantize(net, quant::QuantizeConfig{3, 4});
  std::int64_t prev = std::numeric_limits<std::int64_t>::max();
  for (const int units : {1, 2, 4, 8}) {
    Accelerator accel(small_config(units), qnet);
    const std::int64_t cycles = accel.predict_total_cycles();
    EXPECT_LE(cycles, prev) << units << " units";
    prev = cycles;
  }
}

TEST(Accelerator, LatencyScalesWithTimeSteps) {
  // Paper Table I: "latency scales linearly with the length of the spike
  // train since almost all computations are replicated for each time step".
  // Measured on LeNet-5 (the paper's workload) via the analytic model.
  Rng rng(71);
  nn::Network lenet = nn::make_lenet5();
  lenet.init_params(rng);
  std::vector<double> latencies;
  for (const int T : {3, 6}) {
    const quant::QuantizedNetwork qnet =
        quantize(lenet, quant::QuantizeConfig{3, T});
    Accelerator accel(lenet_reference_config(), qnet);
    latencies.push_back(accel.predict_latency_us());
  }
  const double ratio = latencies[1] / latencies[0];
  EXPECT_GT(ratio, 1.8);
  EXPECT_LT(ratio, 2.2);
}

// --------------------- invariant 4: analytic model == cycle-accurate count

class CycleModelSweep : public ::testing::TestWithParam<int> {};

TEST_P(CycleModelSweep, AnalyticEqualsCycleAccurate) {
  Rng rng(81 + GetParam());
  nn::Network net = small_random_net(rng);
  const quant::QuantizedNetwork qnet = quantize(net, quant::QuantizeConfig{3, 4});
  Accelerator accel(small_config(GetParam()), qnet);

  const TensorF image = random_image(Shape{1, 10, 10}, rng);
  const AccelRunResult run = accel.run_image(image, SimMode::kCycleAccurate);
  EXPECT_EQ(run.total_cycles, accel.predict_total_cycles());

  // The analytic mode must agree on both cycles and logits.
  const AccelRunResult analytic = accel.run_image(image, SimMode::kAnalytic);
  EXPECT_EQ(analytic.total_cycles, run.total_cycles);
  EXPECT_EQ(analytic.logits, run.logits);
}

INSTANTIATE_TEST_SUITE_P(Units, CycleModelSweep, ::testing::Values(1, 2, 3, 4, 8));

TEST(CycleModel, SweepAcrossGeometries) {
  for (const auto& sc :
       {SweepConfig{1, 2, 8, 3, 1, 0, 3}, SweepConfig{2, 3, 9, 3, 1, 1, 3},
        SweepConfig{2, 3, 9, 3, 2, 0, 3}, SweepConfig{1, 4, 11, 5, 1, 0, 4},
        SweepConfig{2, 2, 11, 5, 2, 2, 4}}) {
    Rng rng(91 + sc.kernel + sc.stride);
    nn::Network net = sweep_net(sc, rng);
    const quant::QuantizedNetwork qnet =
        quantize(net, quant::QuantizeConfig{3, sc.time_bits});
    Accelerator accel(small_config(2), qnet);
    const TensorF image = random_image(Shape{sc.cin, sc.size, sc.size}, rng);
    const AccelRunResult run = accel.run_image(image, SimMode::kCycleAccurate);
    EXPECT_EQ(run.total_cycles, accel.predict_total_cycles())
        << "k=" << sc.kernel << " s=" << sc.stride << " p=" << sc.padding;
  }
}

// ------------------------------------------------------------ memory model

TEST(PingPong, SwapAlternatesBuffers) {
  PingPongPair pair("test", 1000);
  pair.store_output(500);
  EXPECT_EQ(pair.pong().used_bits, 500);
  pair.swap();
  EXPECT_EQ(pair.ping().used_bits, 500);
  EXPECT_EQ(pair.swaps(), 1);
}

TEST(PingPong, CapacityViolationThrows) {
  PingPongPair pair("test", 100);
  EXPECT_THROW(pair.store_output(101), ContractViolation);
  EXPECT_NO_THROW(pair.store_output(100));
}

TEST(PingPong, TracksTraffic) {
  PingPongPair pair("test", 1000);
  pair.load_input(200);
  pair.store_output(300);
  EXPECT_EQ(pair.total_read_bits(), 200);
  EXPECT_EQ(pair.total_write_bits(), 300);
}

TEST(WeightMemoryTest, BramIsFree) {
  WeightMemory mem(MemoryConfig{});
  const WeightFetchCost cost = mem.fetch_layer(1000, WeightPlacement::kOnChip);
  EXPECT_EQ(cost.cycles, 0);
  EXPECT_EQ(cost.dram_bits, 0);
}

TEST(WeightMemoryTest, DramCostsSetupPlusBandwidth) {
  MemoryConfig cfg;
  cfg.dram_bits_per_cycle = 64;
  cfg.dram_setup_cycles = 100;
  WeightMemory mem(cfg);
  const WeightFetchCost cost = mem.fetch_layer(6400, WeightPlacement::kDram);
  EXPECT_EQ(cost.cycles, 100 + 100);
  EXPECT_EQ(mem.dram_bits_total(), 6400);
}

TEST(Placement, SmallNetworkStaysOnChip) {
  Rng rng(101);
  nn::Network net = small_random_net(rng);
  const quant::QuantizedNetwork qnet = quantize(net, quant::QuantizeConfig{3, 4});
  const auto placement = plan_placement(qnet, MemoryConfig{});
  for (const auto p : placement) EXPECT_EQ(p, WeightPlacement::kOnChip);
}

TEST(Placement, TinyBudgetForcesDram) {
  Rng rng(102);
  nn::Network net = small_random_net(rng);
  const quant::QuantizedNetwork qnet = quantize(net, quant::QuantizeConfig{3, 4});
  MemoryConfig cfg;
  cfg.weight_bram_bits = 16;
  const auto placement = plan_placement(qnet, cfg);
  EXPECT_EQ(placement[0], WeightPlacement::kDram);   // conv
  EXPECT_EQ(placement[1], WeightPlacement::kOnChip); // pool has no params
  EXPECT_EQ(placement[3], WeightPlacement::kDram);   // linear
}

TEST(LatencyModel, RowReuseBeatsNaiveDataflow) {
  // DESIGN.md invariant 6 / the paper's central dataflow claim.
  ConvDims dims{16, 32, 14, 14, 5, 1, 0};
  AcceleratorConfig cfg = small_config(2);
  cfg.conv.array_columns = 16;
  const LayerLatency lat =
      conv_latency(dims, cfg, 4, WeightPlacement::kOnChip, 3);
  const std::int64_t naive = naive_conv_act_reads_bits(dims, 4);
  EXPECT_LT(lat.traffic.act_read_bits, naive / 4)
      << "row-based dataflow must cut activation reads by a large factor";
}

TEST(LatencyModel, FlattenTransferCycles) {
  TimingParams t;
  t.act_read_bits_per_cycle = 32;
  EXPECT_EQ(flatten_transfer_cycles(100, 4, t), (100 * 4 + 31) / 32);
}

// --------------------------------------------------------- resource model

TEST(ResourceModel, Table2CalibrationShape) {
  // The model must land near the paper's Table II LUT/FF columns.
  AcceleratorConfig cfg = lenet_reference_config();
  BufferPlan plan{32 * 32 * 6 * 4, 120 * 4};
  struct Row {
    int units;
    double luts_k, ffs_k;
  };
  const Row rows[] = {{1, 11, 10}, {2, 15, 14}, {4, 24, 23}, {8, 42, 39}};
  for (const Row& row : rows) {
    cfg.num_conv_units = row.units;
    const ResourceEstimate r = design_resources(cfg, plan, 0, false, 3);
    EXPECT_NEAR(static_cast<double>(r.luts) / 1000.0, row.luts_k,
                row.luts_k * 0.20)
        << row.units << " units";
    EXPECT_NEAR(static_cast<double>(r.flip_flops) / 1000.0, row.ffs_k,
                row.ffs_k * 0.20)
        << row.units << " units";
  }
}

TEST(ResourceModel, ResourcesScaleLinearlyWithUnits) {
  // Paper Sec. IV-C: "hardware resources scale almost linear with the number
  // of convolution units".
  AcceleratorConfig cfg = lenet_reference_config();
  BufferPlan plan{1000, 100};
  cfg.num_conv_units = 1;
  const auto r1 = design_resources(cfg, plan, 0, false, 3);
  cfg.num_conv_units = 8;
  const auto r8 = design_resources(cfg, plan, 0, false, 3);
  const double per_unit =
      static_cast<double>(r8.luts - r1.luts) / 7.0;
  const auto unit = conv_unit_resources(cfg.conv);
  EXPECT_NEAR(per_unit, static_cast<double>(unit.luts), 1.0);
}

TEST(ResourceModel, DramSubsystemOnlyWhenUsed) {
  AcceleratorConfig cfg = lenet_reference_config();
  BufferPlan plan{1000, 100};
  const auto without = design_resources(cfg, plan, 0, false, 3);
  const auto with = design_resources(cfg, plan, 0, true, 3);
  EXPECT_GT(with.luts, without.luts + 20000);
}

TEST(ResourceModel, BramIncludesBuffersAndWeights) {
  AcceleratorConfig cfg = lenet_reference_config();
  BufferPlan plan{5000, 700};
  const auto r = design_resources(cfg, plan, 12345, false, 3);
  EXPECT_EQ(r.bram_bits, 2 * 5000 + 2 * 700 + 12345);
}

// ------------------------------------------------------------ power model

TEST(PowerModel, MonotoneInUnitsAndFrequency) {
  Rng rng(111);
  nn::Network net = small_random_net(rng);
  const quant::QuantizedNetwork qnet = quantize(net, quant::QuantizeConfig{3, 4});
  const TensorF image = random_image(Shape{1, 10, 10}, rng);

  auto power_at = [&](int units, double mhz) {
    AcceleratorConfig cfg = small_config(units);
    cfg.clock_mhz = mhz;
    Accelerator accel(cfg, qnet);
    const AccelRunResult run = accel.run_image(image);
    const ResourceEstimate res = estimate_resources(accel);
    return estimate_power(cfg, res, run, false).total_w();
  };
  EXPECT_LT(power_at(1, 100), power_at(8, 100));
  EXPECT_LT(power_at(2, 100), power_at(2, 200));
}

TEST(PowerModel, Table2CalibrationRange) {
  // At the LeNet design point the model should land in the paper's
  // 3.0-3.4 W band.
  Rng rng(112);
  nn::Network net = small_random_net(rng);
  const quant::QuantizedNetwork qnet = quantize(net, quant::QuantizeConfig{3, 3});
  const TensorF image = random_image(Shape{1, 10, 10}, rng);
  AcceleratorConfig cfg = lenet_reference_config();
  Accelerator accel(cfg, qnet);
  const AccelRunResult run = accel.run_image(image);
  const ResourceEstimate res = estimate_resources(accel);
  const double watts = estimate_power(cfg, res, run, false).total_w();
  EXPECT_GT(watts, 2.8);
  EXPECT_LT(watts, 3.6);
}

TEST(PowerModel, DramAddsInterfacePower) {
  Rng rng(113);
  nn::Network net = small_random_net(rng);
  const quant::QuantizedNetwork qnet = quantize(net, quant::QuantizeConfig{3, 4});
  const TensorF image = random_image(Shape{1, 10, 10}, rng);
  AcceleratorConfig cfg = small_config();
  Accelerator accel(cfg, qnet);
  const AccelRunResult run = accel.run_image(image);
  const ResourceEstimate res = estimate_resources(accel);
  const double without = estimate_power(cfg, res, run, false).total_w();
  const double with = estimate_power(cfg, res, run, true).total_w();
  EXPECT_NEAR(with - without, 1.3, 0.3);
}

// -------------------------------------------------------------- reporting

TEST(Report, MetricsAreConsistent) {
  Rng rng(131);
  nn::Network net = small_random_net(rng);
  const quant::QuantizedNetwork qnet = quantize(net, quant::QuantizeConfig{3, 4});
  AcceleratorConfig cfg = small_config();
  Accelerator accel(cfg, qnet);
  const auto run = accel.run_image(random_image(Shape{1, 10, 10}, rng));
  const auto resources = estimate_resources(accel);
  const auto power = estimate_power(cfg, resources, run, false);

  const RunMetrics m = compute_metrics(cfg, run, power);
  EXPECT_NEAR(m.throughput_fps, 1e6 / run.latency_us, 1e-6);
  EXPECT_NEAR(m.energy_mj, power.total_w() * run.latency_us * 1e-3, 1e-9);
  EXPECT_GT(m.synaptic_ops_per_second, 0.0);
  EXPECT_GT(m.avg_adder_utilization, 0.0);
  EXPECT_LE(m.avg_adder_utilization, 1.0);
}

TEST(Report, CsvHasOneLinePerLayerPlusHeader) {
  Rng rng(132);
  nn::Network net = small_random_net(rng);
  const quant::QuantizedNetwork qnet = quantize(net, quant::QuantizeConfig{3, 4});
  Accelerator accel(small_config(), qnet);
  const auto run = accel.run_image(random_image(Shape{1, 10, 10}, rng));
  const std::string csv = layer_csv(run);
  const auto lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, static_cast<std::int64_t>(run.layers.size()) + 1);
  EXPECT_NE(csv.find("conv"), std::string::npos);
  EXPECT_NE(csv.find("linear"), std::string::npos);
}

TEST(Report, SummaryMentionsKeyQuantities) {
  Rng rng(133);
  nn::Network net = small_random_net(rng);
  const quant::QuantizedNetwork qnet = quantize(net, quant::QuantizeConfig{3, 4});
  AcceleratorConfig cfg = small_config();
  Accelerator accel(cfg, qnet);
  const auto run = accel.run_image(random_image(Shape{1, 10, 10}, rng));
  const auto resources = estimate_resources(accel);
  const auto power = estimate_power(cfg, resources, run, false);
  const std::string text = run_summary(cfg, run, resources, power);
  EXPECT_NE(text.find("latency"), std::string::npos);
  EXPECT_NE(text.find("energy"), std::string::npos);
  EXPECT_NE(text.find("LUTs"), std::string::npos);
}

// -------------------------------------------------------------- edge cases

TEST(Accelerator, RejectsWrongInputShape) {
  Rng rng(121);
  nn::Network net = small_random_net(rng);
  const quant::QuantizedNetwork qnet = quantize(net, quant::QuantizeConfig{3, 4});
  Accelerator accel(small_config(), qnet);
  TensorI wrong(Shape{1, 8, 8});
  EXPECT_THROW(accel.run_codes(wrong), ContractViolation);
}

TEST(Accelerator, RejectsKernelLargerThanUnit) {
  Rng rng(122);
  nn::Network net(Shape{1, 12, 12});
  net.add<nn::Conv2d>(nn::Conv2dConfig{1, 2, 7});
  net.add<nn::ClippedReLU>(nn::ClippedReLUConfig{1.0f, 0});
  net.add<nn::Flatten>();
  net.add<nn::Linear>(nn::LinearConfig{2 * 6 * 6, 3});
  net.init_params(rng);
  const quant::QuantizedNetwork qnet = quantize(net, quant::QuantizeConfig{3, 4});
  EXPECT_THROW(Accelerator(small_config(), qnet), ContractViolation);
}

}  // namespace
}  // namespace rsnn::hw
