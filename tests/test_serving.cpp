// Replicated serving: every pool configuration (replica count x replica
// shape x admission policy) must produce logits bit-identical to monolithic
// execution, the admission queue must survive concurrent producers and honor
// its edge cases (zero capacity, shutdown with in-flight work, batch
// deadline with a single pending item), and plan_serving must pick the
// predicted-throughput-optimal stages x replicas split.
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "compiler/partition.hpp"
#include "engine/engine.hpp"
#include "engine/serving_pool.hpp"
#include "engine/submitter.hpp"
#include "hw/accelerator.hpp"
#include "nn/zoo.hpp"
#include "quant/quantize.hpp"
#include "test_helpers.hpp"

namespace rsnn::engine {
namespace {

/// LeNet-5 at T=4 on the paper's reference design — the acceptance workload.
struct LeNetFixture {
  quant::QuantizedNetwork qnet;
  ir::LayerProgram program;

  LeNetFixture() {
    Rng rng(2024);
    nn::Network lenet = nn::make_lenet5();
    lenet.init_params(rng);
    qnet = quant::quantize(lenet, quant::QuantizeConfig{3, 4});
    program = ir::lower(qnet, hw::lenet_reference_config());
  }
};

std::vector<TensorI> lenet_batch(int count, int T) {
  Rng rng(99);
  std::vector<TensorI> codes;
  for (int i = 0; i < count; ++i)
    codes.push_back(quant::encode_activations(
        rsnn::testing::random_image(Shape{1, 32, 32}, rng), T));
  return codes;
}

std::vector<hw::AccelRunResult> monolithic_reference(
    const ir::LayerProgram& program, EngineKind kind,
    const std::vector<TensorI>& batch) {
  auto engine = make_engine(kind, program);
  std::vector<hw::AccelRunResult> results;
  for (const TensorI& codes : batch) results.push_back(engine->run_codes(codes));
  return results;
}

// ------------------------------------------------------ policy parsing

TEST(AdmissionPolicyNames, RoundTripAndErrors) {
  EXPECT_EQ(parse_policy("fifo"), AdmissionPolicy::kFifo);
  EXPECT_EQ(parse_policy("batch"), AdmissionPolicy::kBatch);
  EXPECT_EQ(parse_policy("reject"), AdmissionPolicy::kReject);
  EXPECT_STREQ(policy_name(AdmissionPolicy::kFifo), "fifo");
  EXPECT_STREQ(policy_name(AdmissionPolicy::kBatch), "batch");
  EXPECT_STREQ(policy_name(AdmissionPolicy::kReject), "reject");
  EXPECT_TRUE(policy_parse_error("batch").empty());
  EXPECT_FALSE(policy_parse_error("lifo").empty());
  EXPECT_THROW(parse_policy("lifo"), ContractViolation);
  EXPECT_THROW(parse_policy(""), ContractViolation);
}

// ----------------------------------------------------- submitter facade

TEST(Submitter, StreamAndPipelineSharesOneInterface) {
  const LeNetFixture fx;
  const auto batch = lenet_batch(2, fx.qnet.time_bits);
  const auto reference =
      monolithic_reference(fx.program, EngineKind::kReference, batch);

  auto monolithic =
      make_submitter(fx.program, EngineKind::kReference, {}, /*workers=*/2);
  EXPECT_EQ(monolithic->shape(), "stream(2)");
  EXPECT_EQ(monolithic->lanes(), 2);
  EXPECT_EQ(monolithic->devices(), 1);

  const auto segments = compiler::partition_balance_latency(fx.program, 3);
  auto pipelined =
      make_submitter(fx.program, EngineKind::kReference, segments);
  EXPECT_EQ(pipelined->shape(), "pipeline(3)");
  EXPECT_EQ(pipelined->lanes(), 3);
  EXPECT_EQ(pipelined->devices(), 3);

  for (Submitter* submitter : {monolithic.get(), pipelined.get()}) {
    const auto results = submitter->submit(batch);
    ASSERT_EQ(results.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(results[i].logits, reference[i].logits) << submitter->shape();
      EXPECT_EQ(results[i].predicted_class, reference[i].predicted_class);
    }
  }
}

// ------------------------------------ pool equivalence (acceptance)

/// Every pool configuration must serve bit-identical logits: the pool adds
/// admission and replication, never arithmetic.
TEST(ServingPool, CrossChecksLogitsAcrossConfigurations) {
  const LeNetFixture fx;
  const auto batch = lenet_batch(6, fx.qnet.time_bits);
  const auto reference =
      monolithic_reference(fx.program, EngineKind::kReference, batch);

  struct Config {
    const char* label;
    int replicas;
    int stages;
    AdmissionPolicy policy;
  };
  const std::vector<Config> configs = {
      {"2 monolithic replicas, fifo", 2, 1, AdmissionPolicy::kFifo},
      {"1 three-stage pipeline, fifo", 1, 3, AdmissionPolicy::kFifo},
      {"2 two-stage pipelines, fifo", 2, 2, AdmissionPolicy::kFifo},
      {"2 monolithic replicas, batch", 2, 1, AdmissionPolicy::kBatch},
      {"2 two-stage pipelines, batch", 2, 2, AdmissionPolicy::kBatch},
  };

  for (const Config& config : configs) {
    SCOPED_TRACE(config.label);
    ServingPoolOptions options;
    options.replicas = config.replicas;
    options.policy = config.policy;
    options.max_wait_ms = 0.5;
    if (config.stages > 1)
      options.segments =
          compiler::partition_balance_latency(fx.program, config.stages);
    ServingPool pool(fx.program, EngineKind::kReference, options);
    EXPECT_EQ(pool.replicas(), config.replicas);
    EXPECT_EQ(pool.devices(), config.replicas * config.stages);

    const auto run = pool.run_batch(batch);
    ASSERT_EQ(run.results.size(), batch.size());
    EXPECT_EQ(run.ok_count(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ASSERT_EQ(run.results[i].status, RequestStatus::kOk) << "image " << i;
      const hw::AccelRunResult& result = run.results[i].result;
      EXPECT_EQ(result.logits, reference[i].logits) << "image " << i;
      EXPECT_EQ(result.predicted_class, reference[i].predicted_class);
      EXPECT_EQ(result.total_cycles, reference[i].total_cycles);
      EXPECT_EQ(result.total_adder_ops, reference[i].total_adder_ops);
      EXPECT_EQ(run.results[i].attempts, 1);
      EXPECT_GE(run.results[i].replica, 0);
    }

    const ServingStats stats = pool.stats();
    EXPECT_EQ(stats.completed, static_cast<std::int64_t>(batch.size()));
    EXPECT_EQ(stats.rejected, 0);
    std::int64_t served = 0;
    for (const std::int64_t count : stats.per_replica) served += count;
    EXPECT_EQ(served, static_cast<std::int64_t>(batch.size()));
    EXPECT_GT(stats.wall_images_per_sec, 0.0);
    EXPECT_GT(stats.modeled_images_per_sec, 0.0);
    EXPECT_GT(stats.bottleneck_cycles, 0);
    EXPECT_LE(stats.p50_latency_ms, stats.p99_latency_ms);
  }
}

TEST(ServingPool, CycleAccurateReplicatedPipelineMatchesMonolithic) {
  const LeNetFixture fx;
  const auto batch = lenet_batch(3, fx.qnet.time_bits);
  const auto reference =
      monolithic_reference(fx.program, EngineKind::kCycleAccurate, batch);

  ServingPoolOptions options;
  options.replicas = 2;
  options.segments = compiler::partition_balance_latency(fx.program, 2);
  ServingPool pool(fx.program, EngineKind::kCycleAccurate, options);

  const auto run = pool.run_batch(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(run.results[i].status, RequestStatus::kOk) << "image " << i;
    const hw::AccelRunResult& result = run.results[i].result;
    EXPECT_EQ(result.logits, reference[i].logits) << "image " << i;
    EXPECT_EQ(result.total_cycles, reference[i].total_cycles);
    EXPECT_EQ(result.total_adder_ops, reference[i].total_adder_ops);
    EXPECT_EQ(result.dram_bits, reference[i].dram_bits);
  }
}

TEST(ServingPool, RelowereedPipelineReplicasKeepLogits) {
  // Re-lowered stages run their own per-device programs: logits must stay
  // bit-identical even though per-stage cycles may differ from monolithic.
  const LeNetFixture fx;
  const auto batch = lenet_batch(2, fx.qnet.time_bits);
  const auto reference =
      monolithic_reference(fx.program, EngineKind::kAnalytic, batch);

  ServingPoolOptions options;
  options.replicas = 2;
  options.segments = compiler::partition_balance_latency(
      fx.program, 2, compiler::PartitionOptions{});
  ASSERT_TRUE(options.segments.front().is_relowered());
  ServingPool pool(fx.program, EngineKind::kAnalytic, options);

  const auto run = pool.run_batch(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(run.results[i].status, RequestStatus::kOk) << "image " << i;
    EXPECT_EQ(run.results[i].result.logits, reference[i].logits)
        << "image " << i;
  }
}

// ------------------------------------------------ queue concurrency

TEST(ServingPool, ConcurrentProducersHammerABoundedQueue) {
  // Four producers race 8 submissions each into a capacity-2 queue feeding
  // two replicas: every request must be admitted (FIFO blocks, never drops)
  // and come back with the right logits for *its* image.
  const LeNetFixture fx;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 8;
  const auto batch =
      lenet_batch(kProducers * kPerProducer, fx.qnet.time_bits);
  const auto reference =
      monolithic_reference(fx.program, EngineKind::kReference, batch);

  ServingPoolOptions options;
  options.replicas = 2;
  options.queue_capacity = 2;
  ServingPool pool(fx.program, EngineKind::kReference, options);

  std::vector<std::vector<std::future<ServingResult>>> tickets(kProducers);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i)
        tickets[p].push_back(pool.submit(batch[p * kPerProducer + i]));
    });
  for (std::thread& producer : producers) producer.join();

  for (int p = 0; p < kProducers; ++p)
    for (int i = 0; i < kPerProducer; ++i) {
      ASSERT_TRUE(tickets[p][i].valid()) << "producer " << p << " item " << i;
      const ServingResult result = tickets[p][i].get();
      ASSERT_EQ(result.status, RequestStatus::kOk)
          << "producer " << p << " item " << i << ": " << result.error;
      EXPECT_EQ(result.result.logits, reference[p * kPerProducer + i].logits)
          << "producer " << p << " item " << i;
    }
  const ServingStats stats = pool.stats();
  EXPECT_EQ(stats.completed, kProducers * kPerProducer);
  EXPECT_EQ(stats.rejected, 0);
}

// --------------------------------------------------- queue edge cases

TEST(ServingPool, ZeroCapacityQueueRejectsEverything) {
  const LeNetFixture fx;
  const auto batch = lenet_batch(3, fx.qnet.time_bits);

  ServingPoolOptions options;
  options.queue_capacity = 0;
  options.policy = AdmissionPolicy::kReject;
  ServingPool pool(fx.program, EngineKind::kReference, options);

  for (const TensorI& codes : batch) {
    auto ticket = pool.submit(codes);
    ASSERT_TRUE(ticket.valid()) << "shed requests resolve, never invalidate";
    const ServingResult shed = ticket.get();
    EXPECT_EQ(shed.status, RequestStatus::kRejected);
    EXPECT_FALSE(shed.error.empty());
    EXPECT_EQ(shed.attempts, 0);
  }
  std::future<ServingResult> ticket;
  EXPECT_FALSE(pool.try_submit(batch[0], &ticket));
  EXPECT_FALSE(ticket.valid()) << "a refused try_submit leaves the ticket";

  const ServingStats stats = pool.stats();
  EXPECT_EQ(stats.submitted, 0);
  EXPECT_EQ(stats.rejected, 4);
  EXPECT_EQ(stats.completed, 0);
  EXPECT_EQ(stats.per_class[0].submitted, 4);
  EXPECT_EQ(stats.per_class[0].rejected, 4);
  EXPECT_DOUBLE_EQ(stats.per_class[0].goodput, 0.0);

  // A zero-capacity queue under a blocking policy would deadlock every
  // producer; the pool refuses to construct it.
  ServingPoolOptions blocking;
  blocking.queue_capacity = 0;
  blocking.policy = AdmissionPolicy::kFifo;
  EXPECT_THROW(ServingPool(fx.program, EngineKind::kReference, blocking),
               ContractViolation);
}

TEST(ServingPool, RejectPolicyShedsUnderBurst) {
  // A burst far faster than one replica drains a capacity-1 queue must shed
  // at least one request, and everything admitted still completes.
  const LeNetFixture fx;
  const auto batch = lenet_batch(1, fx.qnet.time_bits);

  ServingPoolOptions options;
  options.queue_capacity = 1;
  options.policy = AdmissionPolicy::kReject;
  ServingPool pool(fx.program, EngineKind::kReference, options);

  std::vector<std::future<ServingResult>> tickets;
  for (int i = 0; i < 16; ++i) tickets.push_back(pool.submit(batch[0]));

  std::int64_t accepted = 0;
  for (auto& ticket : tickets) {
    ASSERT_TRUE(ticket.valid());
    const ServingResult result = ticket.get();
    if (result.status == RequestStatus::kOk) {
      EXPECT_FALSE(result.result.logits.empty());
      ++accepted;
    } else {
      EXPECT_EQ(result.status, RequestStatus::kRejected);
    }
  }
  const ServingStats stats = pool.stats();
  EXPECT_EQ(stats.submitted, accepted);
  EXPECT_EQ(stats.rejected, 16 - accepted);
  EXPECT_GE(stats.rejected, 1) << "a 16-deep burst into a capacity-1 queue "
                                  "should overflow";
  EXPECT_EQ(stats.completed, accepted);
}

TEST(ServingPool, ShutdownWithInFlightWorkKeepsEveryPromise) {
  // Destroying the pool right after admission must drain, not drop: every
  // future obtained from submit() yields its result after the pool is gone.
  const LeNetFixture fx;
  const auto batch = lenet_batch(4, fx.qnet.time_bits);
  const auto reference =
      monolithic_reference(fx.program, EngineKind::kReference, batch);

  std::vector<std::future<ServingResult>> tickets;
  {
    ServingPool pool(fx.program, EngineKind::kReference,
                     ServingPoolOptions{});
    for (const TensorI& codes : batch) tickets.push_back(pool.submit(codes));
  }  // destructor runs with (likely) queued work

  for (std::size_t i = 0; i < tickets.size(); ++i) {
    ASSERT_TRUE(tickets[i].valid());
    const ServingResult result = tickets[i].get();
    ASSERT_EQ(result.status, RequestStatus::kOk) << result.error;
    EXPECT_EQ(result.result.logits, reference[i].logits) << "image " << i;
  }
}

TEST(ServingPool, BatchDeadlineExpiryDispatchesASingleItem) {
  // One lonely request under batch-accumulate: the max-wait deadline, not a
  // full batch, must release it — alone.
  const LeNetFixture fx;
  const auto batch = lenet_batch(1, fx.qnet.time_bits);

  ServingPoolOptions options;
  options.policy = AdmissionPolicy::kBatch;
  options.max_batch = 8;
  options.max_wait_ms = 5.0;
  ServingPool pool(fx.program, EngineKind::kReference, options);

  auto ticket = pool.submit(batch[0]);
  ASSERT_TRUE(ticket.valid());
  const ServingResult result = ticket.get();
  ASSERT_EQ(result.status, RequestStatus::kOk) << result.error;
  EXPECT_FALSE(result.result.logits.empty());

  const ServingStats stats = pool.stats();
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.dispatches, 1);
  EXPECT_DOUBLE_EQ(stats.mean_batch, 1.0);
}

TEST(ServingPool, BatchPolicyAccumulatesUpToMaxBatch) {
  const LeNetFixture fx;
  const auto batch = lenet_batch(8, fx.qnet.time_bits);
  const auto reference =
      monolithic_reference(fx.program, EngineKind::kReference, batch);

  ServingPoolOptions options;
  options.policy = AdmissionPolicy::kBatch;
  options.max_batch = 4;
  options.max_wait_ms = 50.0;  // long: dispatches should fill, not time out
  ServingPool pool(fx.program, EngineKind::kReference, options);

  const auto run = pool.run_batch(batch);
  EXPECT_EQ(run.ok_count(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_EQ(run.results[i].result.logits, reference[i].logits)
        << "image " << i;

  const ServingStats stats = pool.stats();
  EXPECT_EQ(stats.completed, 8);
  // Never more than max_batch per dispatch; the burst should have grouped.
  EXPECT_GE(stats.dispatches, 2);
  EXPECT_LE(stats.mean_batch, 4.0);
  EXPECT_GT(stats.mean_batch, 1.0);
}

TEST(ServingPool, BatchRefillsFromProducersBlockedOnAFullQueue) {
  // A capacity-1 queue with one producer pushing 4 requests: as the
  // accumulating dispatcher drains the queue it must wake the blocked
  // producer so the batch can refill — one full dispatch, not four
  // deadline-expired singletons (regression: the accumulate loop used to
  // pop without notifying cv_not_full_, deadlocking the refill until the
  // max-wait deadline).
  const LeNetFixture fx;
  const auto batch = lenet_batch(4, fx.qnet.time_bits);

  ServingPoolOptions options;
  options.policy = AdmissionPolicy::kBatch;
  options.queue_capacity = 1;
  options.max_batch = 4;
  options.max_wait_ms = 500.0;
  ServingPool pool(fx.program, EngineKind::kReference, options);

  std::vector<std::future<ServingResult>> tickets;
  for (const TensorI& codes : batch) tickets.push_back(pool.submit(codes));
  for (auto& ticket : tickets) {
    const ServingResult result = ticket.get();
    ASSERT_EQ(result.status, RequestStatus::kOk) << result.error;
    EXPECT_FALSE(result.result.logits.empty());
  }

  const ServingStats stats = pool.stats();
  EXPECT_EQ(stats.completed, 4);
  EXPECT_EQ(stats.dispatches, 1) << "the batch should refill through the "
                                    "bounded queue, not time out";
  EXPECT_DOUBLE_EQ(stats.mean_batch, 4.0);
}

TEST(ServingPool, MalformedRequestFailsOnlyItself) {
  const LeNetFixture fx;
  const auto batch = lenet_batch(1, fx.qnet.time_bits);

  ServingPool pool(fx.program, EngineKind::kReference, ServingPoolOptions{});
  auto bad = pool.submit(TensorI(Shape{1, 8, 8}));
  ASSERT_TRUE(bad.valid());
  const ServingResult failed = bad.get();
  EXPECT_EQ(failed.status, RequestStatus::kReplicaFailed);
  EXPECT_FALSE(failed.error.empty());
  // Deterministic request errors are still retried (the pool cannot tell a
  // bad request from a bad replica a priori), but bounded.
  EXPECT_EQ(failed.attempts, ServingPoolOptions{}.max_retries + 1);

  // The pool stays serviceable after a failed dispatch: a malformed request
  // is the caller's fault and never poisons the replica's health.
  auto good = pool.submit(batch[0]);
  const ServingResult ok = good.get();
  ASSERT_EQ(ok.status, RequestStatus::kOk) << ok.error;
  EXPECT_FALSE(ok.result.logits.empty());
  const ServingStats stats = pool.stats();
  EXPECT_EQ(stats.failed, 1);
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.retries, ServingPoolOptions{}.max_retries);
  EXPECT_EQ(stats.active_replicas, 1);
}

TEST(ServingPool, InvalidOptionsThrow) {
  const LeNetFixture fx;
  {
    ServingPoolOptions options;
    options.replicas = 0;
    EXPECT_THROW(ServingPool(fx.program, EngineKind::kReference, options),
                 ContractViolation);
  }
  {
    ServingPoolOptions options;
    options.workers_per_replica = 0;
    EXPECT_THROW(ServingPool(fx.program, EngineKind::kReference, options),
                 ContractViolation);
  }
  {
    ServingPoolOptions options;
    options.policy = AdmissionPolicy::kBatch;
    options.max_batch = 0;
    EXPECT_THROW(ServingPool(fx.program, EngineKind::kReference, options),
                 ContractViolation);
  }
  {
    // Segments that do not cover the program fail the constructor, not the
    // first request.
    ServingPoolOptions options;
    options.segments = compiler::partition_balance_latency(fx.program, 2);
    options.segments.pop_back();
    EXPECT_THROW(ServingPool(fx.program, EngineKind::kReference, options),
                 ContractViolation);
  }
  {
    ServingPoolOptions options;
    options.max_retries = -1;
    EXPECT_THROW(ServingPool(fx.program, EngineKind::kReference, options),
                 ContractViolation);
  }
  {
    ServingPoolOptions options;
    options.backoff_base_ms = 5.0;
    options.backoff_cap_ms = 1.0;  // cap below base
    EXPECT_THROW(ServingPool(fx.program, EngineKind::kReference, options),
                 ContractViolation);
  }
  {
    ServingPoolOptions options;
    options.quarantine_after_failures = 1;
    options.degrade_after_failures = 2;  // degrade above quarantine
    EXPECT_THROW(ServingPool(fx.program, EngineKind::kReference, options),
                 ContractViolation);
  }
}

// -------------------------------------------------------- plan_serving

TEST(PlanServing, EnumeratesSplitsAndPicksThroughputOptimum) {
  const LeNetFixture fx;
  const std::size_t n = fx.program.size();

  const auto candidates = compiler::enumerate_serving(fx.program, 6);
  ASSERT_EQ(candidates.size(), std::min<std::size_t>(6, n));
  for (const auto& candidate : candidates) {
    EXPECT_EQ(candidate.replicas, 6 / candidate.stages);
    EXPECT_LE(candidate.devices(), 6);
    EXPECT_GT(candidate.bottleneck_cycles, 0);
    EXPECT_GT(candidate.predicted_images_per_sec, 0.0);
    ASSERT_FALSE(candidate.segments.empty());
    EXPECT_EQ(candidate.segments.size(),
              static_cast<std::size_t>(candidate.stages));
    EXPECT_EQ(candidate.segments.front().begin, 0u);
    EXPECT_EQ(candidate.segments.back().end, n);
  }

  const auto plan = compiler::plan_serving(fx.program, 6);
  for (const auto& candidate : candidates)
    EXPECT_GE(plan.predicted_images_per_sec,
              candidate.predicted_images_per_sec)
        << candidate.stages << " stages";
  EXPECT_EQ(
      candidates[compiler::best_serving_candidate(candidates)].stages,
      plan.stages);
  EXPECT_THROW(compiler::best_serving_candidate({}), ContractViolation);

  // A single device leaves no choice.
  const auto solo = compiler::plan_serving(fx.program, 1);
  EXPECT_EQ(solo.stages, 1);
  EXPECT_EQ(solo.replicas, 1);

  // More devices never predict worse throughput.
  EXPECT_GE(compiler::plan_serving(fx.program, 4).predicted_images_per_sec,
            compiler::plan_serving(fx.program, 2).predicted_images_per_sec);

  EXPECT_THROW(compiler::plan_serving(fx.program, 0), ContractViolation);
}

TEST(PlanServing, PlannedConfigurationServesBitIdentically) {
  // Deploy exactly what the planner chose and cross-check the logits.
  const LeNetFixture fx;
  const auto batch = lenet_batch(3, fx.qnet.time_bits);
  const auto reference =
      monolithic_reference(fx.program, EngineKind::kAnalytic, batch);

  const auto plan = compiler::plan_serving(fx.program, 4);
  ServingPoolOptions options;
  options.replicas = plan.replicas;
  if (plan.stages > 1) options.segments = plan.segments;
  ServingPool pool(fx.program, EngineKind::kAnalytic, options);
  const auto run = pool.run_batch(batch);
  EXPECT_EQ(run.ok_count(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_EQ(run.results[i].result.logits, reference[i].logits)
        << "image " << i;
}

TEST(PlanServing, FoldsExpectedRetryCostIntoThroughput) {
  const LeNetFixture fx;

  // The measured overhead factor: completed images cost one dispatch each;
  // retries and stalls each burned roughly one extra image of occupancy.
  EXPECT_DOUBLE_EQ(compiler::expected_attempts_per_image(0, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(compiler::expected_attempts_per_image(100, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(compiler::expected_attempts_per_image(90, 8, 2),
                   100.0 / 90.0);
  EXPECT_THROW(compiler::expected_attempts_per_image(-1, 0, 0),
               ContractViolation);
  EXPECT_THROW(compiler::expected_attempts_per_image(1, -1, 0),
               ContractViolation);
  EXPECT_THROW(compiler::expected_attempts_per_image(1, 0, -1),
               ContractViolation);

  // Doubling the expected attempts halves every candidate's predicted
  // throughput — and nothing else: the cuts and bottlenecks are unchanged.
  compiler::PartitionOptions clean;
  compiler::PartitionOptions flaky;
  flaky.expected_attempts_per_image = 2.0;
  const auto base = compiler::enumerate_serving(fx.program, 4, clean);
  const auto derated = compiler::enumerate_serving(fx.program, 4, flaky);
  ASSERT_EQ(base.size(), derated.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(derated[i].stages, base[i].stages);
    EXPECT_EQ(derated[i].bottleneck_cycles, base[i].bottleneck_cycles);
    EXPECT_DOUBLE_EQ(derated[i].predicted_images_per_sec,
                     base[i].predicted_images_per_sec / 2.0);
  }

  // A factor below 1 would claim images cost less than one dispatch.
  compiler::PartitionOptions invalid;
  invalid.expected_attempts_per_image = 0.5;
  EXPECT_THROW(compiler::enumerate_serving(fx.program, 2, invalid),
               ContractViolation);

  // End-to-end: fold a measured fault window back into the planner and the
  // prediction derates accordingly.
  compiler::PartitionOptions measured;
  measured.expected_attempts_per_image =
      compiler::expected_attempts_per_image(90, 8, 2);
  EXPECT_LT(
      compiler::plan_serving(fx.program, 4, measured).predicted_images_per_sec,
      compiler::plan_serving(fx.program, 4, clean).predicted_images_per_sec);
}

// ------------------------------------------------------ typed request core

TEST(ServingPool, TypedRequestCoreRoutesByModelIdAndCarriesOptions) {
  // The typed submit(Request) path every wrapper and the wire protocol
  // funnel through: a matching (or empty) routing key serves normally; a
  // mismatched key is the misrouted-submission backstop and resolves typed
  // kRejected without queueing.
  const LeNetFixture fx;
  const auto batch = lenet_batch(2, fx.qnet.time_bits);
  const auto reference =
      monolithic_reference(fx.program, EngineKind::kReference, batch);

  ServingPoolOptions options;
  options.model_id = "lenet";
  ServingPool pool(fx.program, EngineKind::kReference, options);
  EXPECT_EQ(pool.model_id(), "lenet");

  Request routed;
  routed.model_id = "lenet";
  routed.codes = batch[0];
  routed.options.deadline_ms = 60000.0;
  auto routed_ticket = pool.submit(std::move(routed));

  Request unrouted;  // empty key targets whichever pool receives it
  unrouted.codes = batch[1];
  auto unrouted_ticket = pool.submit(std::move(unrouted));

  Request misrouted;
  misrouted.model_id = "vgg11";
  misrouted.codes = batch[0];
  bool admitted = true;
  auto misrouted_ticket = pool.submit(std::move(misrouted), &admitted);
  EXPECT_FALSE(admitted) << "a misrouted request must not enter the queue";

  const ServingResult served = routed_ticket.get();
  ASSERT_EQ(served.status, RequestStatus::kOk) << served.error;
  EXPECT_EQ(served.result.logits, reference[0].logits);
  const ServingResult unrouted_served = unrouted_ticket.get();
  ASSERT_EQ(unrouted_served.status, RequestStatus::kOk)
      << unrouted_served.error;
  EXPECT_EQ(unrouted_served.result.logits, reference[1].logits);

  const ServingResult miss = misrouted_ticket.get();
  EXPECT_EQ(miss.status, RequestStatus::kRejected);
  EXPECT_NE(miss.error.find("vgg11"), std::string::npos) << miss.error;
  EXPECT_NE(miss.error.find("lenet"), std::string::npos) << miss.error;

  const ServingStats stats = pool.stats();
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(stats.submitted, 2) << "the misrouted request never counted";
}

}  // namespace
}  // namespace rsnn::engine
