// RTL generator: structural well-formedness of the emitted SystemVerilog
// and consistency between the bundle and the design configuration.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "quant/quantize.hpp"
#include "rtl/generate.hpp"
#include "test_helpers.hpp"

namespace rsnn::rtl {
namespace {

hw::AcceleratorConfig test_config() {
  hw::AcceleratorConfig cfg = hw::lenet_reference_config();
  cfg.num_conv_units = 2;
  return cfg;
}

int count_occurrences(const std::string& text, const std::string& needle) {
  int count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size()))
    ++count;
  return count;
}

bool is_ident(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// Whole-token occurrences (so "end" does not match "addend"/"endmodule").
int count_token(const std::string& text, const std::string& token) {
  int count = 0;
  for (std::size_t pos = text.find(token); pos != std::string::npos;
       pos = text.find(token, pos + token.size())) {
    const bool left_ok = pos == 0 || !is_ident(text[pos - 1]);
    const bool right_ok =
        pos + token.size() >= text.size() || !is_ident(text[pos + token.size()]);
    if (left_ok && right_ok) ++count;
  }
  return count;
}

TEST(RtlGenerate, BundleContainsAllModules) {
  const SourceBundle bundle = generate_design(test_config(), GenerateOptions{});
  EXPECT_TRUE(bundle.count("rsnn_pkg.sv"));
  EXPECT_TRUE(bundle.count("conv_unit.sv"));
  EXPECT_TRUE(bundle.count("pool_unit.sv"));
  EXPECT_TRUE(bundle.count("linear_unit.sv"));
  EXPECT_TRUE(bundle.count("output_logic.sv"));
  EXPECT_TRUE(bundle.count("pingpong_buffer.sv"));
  EXPECT_TRUE(bundle.count("rsnn_accel.sv"));
  EXPECT_TRUE(bundle.count("rsnn_accel.f"));
}

TEST(RtlGenerate, PackageReflectsGeometry) {
  hw::AcceleratorConfig cfg = test_config();
  cfg.conv.array_columns = 30;
  cfg.conv.kernel_rows = 5;
  cfg.linear.lanes = 16;
  GenerateOptions options;
  options.time_steps = 6;
  options.weight_bits = 3;
  const SourceBundle bundle = generate_design(cfg, options);
  const std::string& pkg = bundle.at("rsnn_pkg.sv");
  EXPECT_NE(pkg.find("CONV_COLS      = 30"), std::string::npos);
  EXPECT_NE(pkg.find("CONV_ROWS      = 5"), std::string::npos);
  EXPECT_NE(pkg.find("FC_LANES       = 16"), std::string::npos);
  EXPECT_NE(pkg.find("TIME_STEPS     = 6"), std::string::npos);
  EXPECT_NE(pkg.find("WEIGHT_W       = 3"), std::string::npos);
}

TEST(RtlGenerate, ModulesAreStructurallyBalanced) {
  const SourceBundle bundle = generate_design(test_config(), GenerateOptions{});
  for (const auto& [name, text] : bundle) {
    if (name.size() < 3 || name.substr(name.size() - 3) != ".sv") continue;
    // Every module closes and begins match ends.
    if (name == "rsnn_pkg.sv") {
      EXPECT_NE(text.find("endpackage"), std::string::npos) << name;
      continue;
    }
    EXPECT_EQ(count_token(text, "module"), count_token(text, "endmodule"))
        << name;
    EXPECT_EQ(count_token(text, "begin"), count_token(text, "end"))
        << name << ": begin/end imbalance";
    EXPECT_NE(text.find("`default_nettype none"), std::string::npos) << name;
  }
}

TEST(RtlGenerate, TopInstantiatesEveryConvUnit) {
  hw::AcceleratorConfig cfg = test_config();
  cfg.num_conv_units = 4;
  const SourceBundle bundle = generate_design(cfg, GenerateOptions{});
  const std::string& top = bundle.at("rsnn_accel.sv");
  EXPECT_EQ(count_occurrences(top, "conv_unit #("), 4);
  EXPECT_EQ(count_occurrences(top, "pool_unit #("), 1);
  EXPECT_EQ(count_occurrences(top, "linear_unit #("), 1);
  EXPECT_EQ(count_occurrences(top, "pingpong_buffer #("), 2);
}

TEST(RtlGenerate, WeightMemFilesMatchLayers) {
  Rng rng(1);
  nn::Network net = rsnn::testing::small_random_net(rng);
  const auto qnet = quant::quantize(net, quant::QuantizeConfig{3, 4});
  const SourceBundle bundle =
      generate_design_with_weights(test_config(), qnet, "accel");
  EXPECT_TRUE(bundle.count("weights_layer0_conv.mem"));
  EXPECT_TRUE(bundle.count("weights_layer3_fc.mem"));

  // One hex word per weight.
  const auto& conv = std::get<quant::QConv2d>(qnet.layers[0]);
  const std::string& mem = bundle.at("weights_layer0_conv.mem");
  EXPECT_EQ(count_occurrences(mem, "\n"),
            static_cast<int>(conv.weight.numel()));
}

TEST(RtlGenerate, WeightEncodingIsTwosComplement) {
  Rng rng(2);
  nn::Network net = rsnn::testing::small_random_net(rng);
  auto qnet = quant::quantize(net, quant::QuantizeConfig{3, 4});
  auto& conv = std::get<quant::QConv2d>(qnet.layers[0]);
  conv.weight.at_flat(0) = -1;  // 3-bit two's complement: 0x7
  conv.weight.at_flat(1) = 3;   // 0x3
  const SourceBundle bundle =
      generate_design_with_weights(test_config(), qnet, "accel");
  const std::string& mem = bundle.at("weights_layer0_conv.mem");
  EXPECT_EQ(mem.substr(0, 2), "7\n");
  EXPECT_EQ(mem.substr(2, 2), "3\n");
}

TEST(RtlGenerate, WriteBundleRoundTrips) {
  const std::string dir = ::testing::TempDir() + "/rsnn_rtl_out";
  const SourceBundle bundle = generate_design(test_config(), GenerateOptions{});
  const int written = write_bundle(bundle, dir);
  EXPECT_EQ(written, static_cast<int>(bundle.size()));

  std::ifstream is(dir + "/conv_unit.sv");
  ASSERT_TRUE(is.good());
  std::string contents((std::istreambuf_iterator<char>(is)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, bundle.at("conv_unit.sv"));
  std::filesystem::remove_all(dir);
}

TEST(RtlGenerate, RejectsBadOptions) {
  GenerateOptions bad;
  bad.time_steps = 0;
  EXPECT_THROW(generate_design(test_config(), bad), ContractViolation);
  bad.time_steps = 4;
  bad.weight_bits = 1;
  EXPECT_THROW(generate_design(test_config(), bad), ContractViolation);
}

}  // namespace
}  // namespace rsnn::rtl
