// RTL generator: structural well-formedness of the emitted SystemVerilog
// and consistency between the bundle and the design configuration —
// including the per-segment pipeline bundles (op coverage, stream-interface
// widths matching the cut tensors).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "compiler/partition.hpp"
#include "nn/zoo.hpp"
#include "quant/quantize.hpp"
#include "rtl/generate.hpp"
#include "test_helpers.hpp"

namespace rsnn::rtl {
namespace {

hw::AcceleratorConfig test_config() {
  hw::AcceleratorConfig cfg = hw::lenet_reference_config();
  cfg.num_conv_units = 2;
  return cfg;
}

int count_occurrences(const std::string& text, const std::string& needle) {
  int count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size()))
    ++count;
  return count;
}

bool is_ident(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// Whole-token occurrences (so "end" does not match "addend"/"endmodule").
int count_token(const std::string& text, const std::string& token) {
  int count = 0;
  for (std::size_t pos = text.find(token); pos != std::string::npos;
       pos = text.find(token, pos + token.size())) {
    const bool left_ok = pos == 0 || !is_ident(text[pos - 1]);
    const bool right_ok =
        pos + token.size() >= text.size() || !is_ident(text[pos + token.size()]);
    if (left_ok && right_ok) ++count;
  }
  return count;
}

TEST(RtlGenerate, BundleContainsAllModules) {
  const SourceBundle bundle = generate_design(test_config(), GenerateOptions{});
  EXPECT_TRUE(bundle.count("rsnn_pkg.sv"));
  EXPECT_TRUE(bundle.count("conv_unit.sv"));
  EXPECT_TRUE(bundle.count("pool_unit.sv"));
  EXPECT_TRUE(bundle.count("linear_unit.sv"));
  EXPECT_TRUE(bundle.count("output_logic.sv"));
  EXPECT_TRUE(bundle.count("pingpong_buffer.sv"));
  EXPECT_TRUE(bundle.count("rsnn_accel.sv"));
  EXPECT_TRUE(bundle.count("rsnn_accel.f"));
}

TEST(RtlGenerate, PackageReflectsGeometry) {
  hw::AcceleratorConfig cfg = test_config();
  cfg.conv.array_columns = 30;
  cfg.conv.kernel_rows = 5;
  cfg.linear.lanes = 16;
  GenerateOptions options;
  options.time_steps = 6;
  options.weight_bits = 3;
  const SourceBundle bundle = generate_design(cfg, options);
  const std::string& pkg = bundle.at("rsnn_pkg.sv");
  EXPECT_NE(pkg.find("CONV_COLS      = 30"), std::string::npos);
  EXPECT_NE(pkg.find("CONV_ROWS      = 5"), std::string::npos);
  EXPECT_NE(pkg.find("FC_LANES       = 16"), std::string::npos);
  EXPECT_NE(pkg.find("TIME_STEPS     = 6"), std::string::npos);
  EXPECT_NE(pkg.find("WEIGHT_W       = 3"), std::string::npos);
}

TEST(RtlGenerate, ModulesAreStructurallyBalanced) {
  const SourceBundle bundle = generate_design(test_config(), GenerateOptions{});
  for (const auto& [name, text] : bundle) {
    if (name.size() < 3 || name.substr(name.size() - 3) != ".sv") continue;
    // Every module closes and begins match ends.
    if (name == "rsnn_pkg.sv") {
      EXPECT_NE(text.find("endpackage"), std::string::npos) << name;
      continue;
    }
    EXPECT_EQ(count_token(text, "module"), count_token(text, "endmodule"))
        << name;
    EXPECT_EQ(count_token(text, "begin"), count_token(text, "end"))
        << name << ": begin/end imbalance";
    EXPECT_NE(text.find("`default_nettype none"), std::string::npos) << name;
  }
}

TEST(RtlGenerate, TopInstantiatesEveryConvUnit) {
  hw::AcceleratorConfig cfg = test_config();
  cfg.num_conv_units = 4;
  const SourceBundle bundle = generate_design(cfg, GenerateOptions{});
  const std::string& top = bundle.at("rsnn_accel.sv");
  EXPECT_EQ(count_occurrences(top, "conv_unit #("), 4);
  EXPECT_EQ(count_occurrences(top, "pool_unit #("), 1);
  EXPECT_EQ(count_occurrences(top, "linear_unit #("), 1);
  EXPECT_EQ(count_occurrences(top, "pingpong_buffer #("), 2);
}

TEST(RtlGenerate, WeightMemFilesMatchLayers) {
  Rng rng(1);
  nn::Network net = rsnn::testing::small_random_net(rng);
  const auto qnet = quant::quantize(net, quant::QuantizeConfig{3, 4});
  const SourceBundle bundle =
      generate_design_with_weights(test_config(), qnet, "accel");
  EXPECT_TRUE(bundle.count("weights_layer0_conv.mem"));
  EXPECT_TRUE(bundle.count("weights_layer3_fc.mem"));

  // One hex word per weight.
  const auto& conv = std::get<quant::QConv2d>(qnet.layers[0]);
  const std::string& mem = bundle.at("weights_layer0_conv.mem");
  EXPECT_EQ(count_occurrences(mem, "\n"),
            static_cast<int>(conv.weight.numel()));
}

TEST(RtlGenerate, WeightEncodingIsTwosComplement) {
  Rng rng(2);
  nn::Network net = rsnn::testing::small_random_net(rng);
  auto qnet = quant::quantize(net, quant::QuantizeConfig{3, 4});
  auto& conv = std::get<quant::QConv2d>(qnet.layers[0]);
  conv.weight.at_flat(0) = -1;  // 3-bit two's complement: 0x7
  conv.weight.at_flat(1) = 3;   // 0x3
  const SourceBundle bundle =
      generate_design_with_weights(test_config(), qnet, "accel");
  const std::string& mem = bundle.at("weights_layer0_conv.mem");
  EXPECT_EQ(mem.substr(0, 2), "7\n");
  EXPECT_EQ(mem.substr(2, 2), "3\n");
}

TEST(RtlGenerate, WriteBundleRoundTrips) {
  const std::string dir = ::testing::TempDir() + "/rsnn_rtl_out";
  const SourceBundle bundle = generate_design(test_config(), GenerateOptions{});
  const int written = write_bundle(bundle, dir);
  EXPECT_EQ(written, static_cast<int>(bundle.size()));

  std::ifstream is(dir + "/conv_unit.sv");
  ASSERT_TRUE(is.good());
  std::string contents((std::istreambuf_iterator<char>(is)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, bundle.at("conv_unit.sv"));
  std::filesystem::remove_all(dir);
}

TEST(RtlGenerate, RejectsBadOptions) {
  GenerateOptions bad;
  bad.time_steps = 0;
  EXPECT_THROW(generate_design(test_config(), bad), ContractViolation);
  bad.time_steps = 4;
  bad.weight_bits = 1;
  EXPECT_THROW(generate_design(test_config(), bad), ContractViolation);
}

// ------------------------------------------------- per-segment bundles

/// Network op indices listed by a stage manifest's `op <i> ...` lines.
std::vector<int> manifest_ops(const std::string& manifest) {
  std::vector<int> ops;
  std::istringstream is(manifest);
  std::string line;
  while (std::getline(is, line))
    if (line.rfind("op ", 0) == 0) ops.push_back(std::stoi(line.substr(3)));
  return ops;
}

const std::string& stage_manifest(const StageBundle& stage) {
  return stage.files.at("stage" + std::to_string(stage.stage) +
                        "_manifest.txt");
}

/// Every op appears in exactly one stage bundle, in order, covering
/// [0, n_ops) with no gaps; stream-interface parameters match each cut
/// tensor's code width (T bits per beat) and element count.
void expect_bundles_cover_program(
    const std::vector<StageBundle>& bundles,
    const std::vector<ir::ProgramSegment>& segments,
    const ir::LayerProgram& program, const std::string& top_name) {
  ASSERT_EQ(bundles.size(), segments.size());
  const int T = program.time_bits();

  std::vector<int> covered;
  for (std::size_t s = 0; s < bundles.size(); ++s) {
    const StageBundle& stage = bundles[s];
    const ir::ProgramSegment& seg = segments[s];
    EXPECT_EQ(stage.op_begin, seg.begin);
    EXPECT_EQ(stage.op_end, seg.end);

    const std::vector<int> ops = manifest_ops(stage_manifest(stage));
    ASSERT_EQ(ops.size(), seg.size()) << "stage " << s;
    for (std::size_t i = 0; i < ops.size(); ++i)
      EXPECT_EQ(ops[i], static_cast<int>(seg.begin + i)) << "stage " << s;
    covered.insert(covered.end(), ops.begin(), ops.end());

    const std::string stage_top =
        top_name + "_stage" + std::to_string(stage.stage);
    ASSERT_TRUE(stage.files.count(stage_top + ".sv")) << stage_top;
    const std::string& top = stage.files.at(stage_top + ".sv");

    // Ingress stream: one T-bit activation code per beat, cut-tensor many.
    EXPECT_NE(top.find("IN_CODE_W    = " + std::to_string(T)),
              std::string::npos)
        << stage_top;
    EXPECT_NE(top.find("IN_CUT_ELEMS = " +
                       std::to_string(seg.in_shape.numel())),
              std::string::npos)
        << stage_top;
    EXPECT_NE(top.find("IN_CUT_BITS  = " + std::to_string(seg.in_cut_bits)),
              std::string::npos)
        << stage_top;
    EXPECT_NE(top.find("[IN_CODE_W-1:0]    s_cut_data"), std::string::npos)
        << stage_top;

    if (seg.final_segment) {
      EXPECT_NE(top.find("m_logit_valid"), std::string::npos) << stage_top;
      EXPECT_EQ(top.find("m_cut_valid"), std::string::npos) << stage_top;
    } else {
      EXPECT_NE(top.find("OUT_CODE_W    = " + std::to_string(T)),
                std::string::npos)
          << stage_top;
      EXPECT_NE(top.find("OUT_CUT_ELEMS = " +
                         std::to_string(seg.out_shape.numel())),
                std::string::npos)
          << stage_top;
      EXPECT_NE(top.find("[OUT_CODE_W-1:0]   m_cut_data"), std::string::npos)
          << stage_top;
    }

    // The stage top carries its re-lowered device plan as parameters.
    if (seg.relowered != nullptr) {
      EXPECT_NE(top.find("BUF2D_BITS_EACH = " +
                         std::to_string(
                             seg.relowered->buffer_plan().buffer2d_bits_each)),
                std::string::npos)
          << stage_top;
      EXPECT_NE(top.find("WEIGHTS_ON_CHIP = 1'b" +
                         std::string(seg.relowered->uses_dram() ? "0" : "1")),
                std::string::npos)
          << stage_top;
    }

    // Every stage is a self-contained project: core design, the stream
    // endpoint primitive, and a filelist naming the stage top.
    EXPECT_TRUE(stage.files.count("stream_endpoint.sv"));
    EXPECT_TRUE(stage.files.count("rsnn_pkg.sv"));
    EXPECT_TRUE(stage.files.count(stage_top + "_core.sv"));
    ASSERT_TRUE(stage.files.count(stage_top + ".f"));
    EXPECT_NE(stage.files.at(stage_top + ".f").find(stage_top + ".sv"),
              std::string::npos);
    EXPECT_EQ(count_token(top, "module"), count_token(top, "endmodule"))
        << stage_top;
  }

  // Exactly-once coverage of the whole program.
  std::vector<int> expected(program.size());
  for (std::size_t i = 0; i < program.size(); ++i)
    expected[i] = static_cast<int>(i);
  EXPECT_EQ(covered, expected);
}

TEST(RtlPipeline, LeNetTwoStageBundlesCoverEveryOpOnce) {
  Rng rng(11);
  nn::Network lenet = nn::make_lenet5();
  lenet.init_params(rng);
  const auto qnet = quant::quantize(lenet, quant::QuantizeConfig{3, 4});
  const ir::LayerProgram program =
      ir::lower(qnet, hw::lenet_reference_config());

  const auto segments = compiler::partition_balance_latency(
      program, 2, compiler::PartitionOptions{});
  const auto bundles = generate_pipeline_bundles(program, segments);
  expect_bundles_cover_program(bundles, segments, program, "rsnn_accel");

  // Weight images land in exactly the stage owning the op.
  int weight_files = 0;
  for (const StageBundle& stage : bundles)
    for (const auto& [name, contents] : stage.files)
      if (name.rfind("weights_layer", 0) == 0) {
        ++weight_files;
        EXPECT_FALSE(contents.empty()) << name;
        const int layer = std::stoi(name.substr(13));
        EXPECT_GE(layer, static_cast<int>(stage.op_begin)) << name;
        EXPECT_LT(layer, static_cast<int>(stage.op_end)) << name;
      }
  int param_ops = 0;
  for (const ir::LayerOp& op : program.ops())
    if (op.kind == ir::OpKind::kConv || op.kind == ir::OpKind::kLinear)
      ++param_ops;
  EXPECT_EQ(weight_files, param_ops);
}

TEST(RtlPipeline, Vgg11FourStageBundlesMatchCutTensors) {
  Rng rng(13);
  nn::Network vgg = nn::make_vgg11();
  vgg.init_params(rng);
  const auto qnet = quant::quantize(vgg, quant::QuantizeConfig{3, 3});
  const ir::LayerProgram program =
      ir::lower(qnet, hw::vgg11_table3_config());

  const auto segments = compiler::partition_balance_latency(
      program, 4, compiler::PartitionOptions{});
  ASSERT_EQ(segments.size(), 4u);
  PipelineBundleOptions options;
  options.include_weights = false;  // 28.5M parameters: structure only
  const auto bundles = generate_pipeline_bundles(program, segments, options);
  expect_bundles_cover_program(bundles, segments, program, "rsnn_accel");

  for (const StageBundle& stage : bundles) {
    for (const auto& [name, _] : stage.files)
      EXPECT_EQ(name.rfind("weights_layer", 0), std::string::npos) << name;
    // The manifest records the re-lowered device plan and cut geometry.
    const std::string& manifest = stage_manifest(stage);
    EXPECT_NE(manifest.find("in_cut elems="), std::string::npos);
    EXPECT_NE(manifest.find("code_bits=3"), std::string::npos);
    EXPECT_NE(manifest.find("device dram="), std::string::npos);
  }
}

}  // namespace
}  // namespace rsnn::rtl
